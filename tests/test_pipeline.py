"""Unit tests for the paper pipeline (small world)."""

import pytest

from repro.ecosystem import small_config
from repro.feeds import PAPER_FEED_ORDER
from repro.pipeline import PaperPipeline
from repro.pipeline.runner import FIG9_FEEDS, HONEYPOT_FEEDS


@pytest.fixture(scope="module")
def pipeline():
    p = PaperPipeline(small_config(), seed=7)
    p.run()
    return p


class TestRun:
    def test_run_cached(self, pipeline):
        assert pipeline.run() is pipeline.run()

    def test_all_ten_feeds_collected(self, pipeline):
        assert set(pipeline.run().datasets) == set(PAPER_FEED_ORDER)

    def test_comparison_property(self, pipeline):
        assert pipeline.comparison is pipeline.run().comparison


class TestTables:
    def test_table1_structure(self, pipeline):
        table = pipeline.table1()
        assert list(table) == list(PAPER_FEED_ORDER)
        for cells in table.values():
            assert cells["samples"] >= cells["unique"] >= 0

    def test_table2_rows(self, pipeline):
        rows = pipeline.table2()
        assert [r.feed for r in rows] == list(PAPER_FEED_ORDER)
        for row in rows:
            for value in (row.dns, row.http, row.tagged, row.odp, row.alexa):
                assert 0.0 <= value <= 1.0

    def test_table3_consistency(self, pipeline):
        for row in pipeline.table3():
            assert row.exclusive_all <= row.total_all
            assert row.total_tagged <= row.total_live <= row.total_all
            assert row.exclusive_live <= row.total_live
            assert row.exclusive_tagged <= row.total_tagged

    def test_renders_nonempty(self, pipeline):
        assert "Table 1" in pipeline.render_table1()
        assert "Table 2" in pipeline.render_table2()
        assert "Table 3" in pipeline.render_table3()


class TestFigures:
    def test_figure1_points(self, pipeline):
        points = pipeline.figure1("live")
        assert {p.feed for p in points} == set(PAPER_FEED_ORDER)

    def test_figure2_matrices(self, pipeline):
        matrix = pipeline.figure2("tagged")
        assert matrix.union_size > 0
        for feed in PAPER_FEED_ORDER:
            assert 0.0 <= matrix.union_coverage(feed) <= 1.0

    def test_figure3_rows(self, pipeline):
        for kind in ("live", "tagged"):
            rows = pipeline.figure3(kind)
            assert [r.feed for r in rows] == list(PAPER_FEED_ORDER)

    def test_figure4_5_matrices(self, pipeline):
        assert pipeline.figure4().union_size > 0
        assert pipeline.figure5().union_size > 0

    def test_figure6_rows(self, pipeline):
        rows = pipeline.figure6()
        for row in rows:
            assert 0.0 <= row.revenue_fraction <= 1.0

    def test_figure7_8_matrices(self, pipeline):
        vd = pipeline.figure7()
        kt = pipeline.figure8()
        assert "Mail" in vd and "Mail" in kt
        volume_feeds = {"mx1", "mx2", "mx3", "Ac1", "Ac2", "Bot"}
        assert volume_feeds <= set(vd)
        # Hu/Hyb/blacklists carry no volume info (Section 4.3).
        assert "Hu" not in vd and "Hyb" not in vd and "dbl" not in vd

    def test_figure9_excludes_bot(self, pipeline):
        stats = pipeline.figure9()
        assert "Bot" not in stats
        assert set(stats) <= set(FIG9_FEEDS)

    def test_figures_10_to_12_honeypots_only(self, pipeline):
        for stats in (
            pipeline.figure10(), pipeline.figure11(), pipeline.figure12()
        ):
            assert set(stats) <= set(HONEYPOT_FEEDS)

    def test_render_all_contains_every_artifact(self, pipeline):
        text = pipeline.render_all()
        for marker in (
            "Table 1", "Table 2", "Table 3",
            "Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
            "Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10",
            "Figure 11", "Figure 12",
        ):
            assert marker in text


class TestDeterminism:
    def test_same_seed_same_tables(self):
        a = PaperPipeline(small_config(), seed=99).table1()
        b = PaperPipeline(small_config(), seed=99).table1()
        assert a == b

    def test_different_seed_differs(self):
        a = PaperPipeline(small_config(), seed=99).table1()
        b = PaperPipeline(small_config(), seed=100).table1()
        assert a != b
