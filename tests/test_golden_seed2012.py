"""Golden regression tests for the calibrated default (seed 2012).

The shape tests tolerate ranges; these pin exact values so that any
change to the generator, capture models or RNG derivation is caught
immediately.  If a change is intentional (re-calibration), update these
numbers together with EXPERIMENTS.md.
"""

import pytest


@pytest.fixture(scope="module")
def table1(paper_pipeline):
    return paper_pipeline.table1()


class TestGoldenTable1:
    def test_sample_counts(self, table1):
        assert table1["Hu"]["samples"] == 21_912
        assert table1["mx2"]["samples"] == 190_967
        assert table1["Hyb"]["samples"] == 509_132

    def test_unique_counts(self, table1):
        assert table1["Hu"]["unique"] == 15_988
        assert table1["dbl"]["unique"] == 4_736
        assert table1["uribl"]["unique"] == 1_852
        assert table1["Bot"]["unique"] == 53_953


class TestGoldenTable3(object):
    def test_tagged_counts(self, paper_pipeline):
        rows = {r.feed: r for r in paper_pipeline.table3()}
        assert rows["Hu"].total_tagged == 1_438
        assert rows["Hu"].exclusive_tagged == 292
        assert rows["Bot"].exclusive_tagged == 0

    def test_live_counts(self, paper_pipeline):
        rows = {r.feed: r for r in paper_pipeline.table3()}
        assert rows["Hyb"].total_live == 10_503
        assert rows["Hyb"].exclusive_live == 6_473


class TestGoldenMatrices:
    def test_tagged_union_size(self, paper_pipeline):
        assert paper_pipeline.figure2("tagged").union_size == 1_833

    def test_program_union(self, paper_pipeline):
        assert paper_pipeline.figure4().union_size == 43

    def test_bot_rx_affiliates(self, paper_pipeline):
        # Exactly the paper's count: 3 RX identifiers in the Bot feed.
        assert paper_pipeline.figure5().intersection("Bot", "All") == 3


class TestGoldenProportionality:
    def test_mx2_mail_distance(self, paper_pipeline):
        from repro.analysis.proportionality import MAIL

        vd = paper_pipeline.figure7()
        assert vd["mx2"][MAIL] == pytest.approx(0.7359, abs=0.02)
