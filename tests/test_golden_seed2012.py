"""Golden regression tests for the calibrated default (seed 2012).

The shape tests tolerate ranges; these pin exact values so that any
change to the generator, capture models or RNG derivation is caught
immediately.  If a change is intentional (re-calibration), update these
numbers together with EXPERIMENTS.md.
"""

import pytest


@pytest.fixture(scope="module")
def table1(paper_pipeline):
    return paper_pipeline.table1()


class TestGoldenTable1:
    def test_sample_counts(self, table1):
        assert table1["Hu"]["samples"] == 21_839
        assert table1["mx2"]["samples"] == 232_909
        assert table1["Hyb"]["samples"] == 508_838

    def test_unique_counts(self, table1):
        assert table1["Hu"]["unique"] == 15_895
        assert table1["dbl"]["unique"] == 4_693
        assert table1["uribl"]["unique"] == 1_840
        assert table1["Bot"]["unique"] == 53_925


class TestGoldenTable3(object):
    def test_tagged_counts(self, paper_pipeline):
        rows = {r.feed: r for r in paper_pipeline.table3()}
        assert rows["Hu"].total_tagged == 1_586
        assert rows["Hu"].exclusive_tagged == 318
        assert rows["Bot"].exclusive_tagged == 0

    def test_live_counts(self, paper_pipeline):
        rows = {r.feed: r for r in paper_pipeline.table3()}
        assert rows["Hyb"].total_live == 10_420
        assert rows["Hyb"].exclusive_live == 6_338


class TestGoldenMatrices:
    def test_tagged_union_size(self, paper_pipeline):
        assert paper_pipeline.figure2("tagged").union_size == 2_040

    def test_program_union(self, paper_pipeline):
        assert paper_pipeline.figure4().union_size == 44

    def test_bot_rx_affiliates(self, paper_pipeline):
        # Single digits like the paper's 3 RX identifiers in Bot.
        assert paper_pipeline.figure5().intersection("Bot", "All") == 2


class TestGoldenProportionality:
    def test_mx2_mail_distance(self, paper_pipeline):
        from repro.analysis.proportionality import MAIL

        vd = paper_pipeline.figure7()
        assert vd["mx2"][MAIL] == pytest.approx(0.7705, abs=0.02)
