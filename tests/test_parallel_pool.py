"""Lifecycle and safety of the persistent worker pool.

Equivalence of pool-executed pipelines lives in
``test_parallel_equivalence.py``; this module covers the pool's own
contract: ordered results, exception shipping, crash detection (a dead
worker must raise, not hang), idempotent shutdown, broadcast-installed
worker state, and counter folding.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.parallel import PoolClosed, WorkerCrashed, WorkerPool
from repro.parallel.pool import _OP_STOP


# Pool tasks are pickled by reference, so they must be module-level.


def _square(x: int) -> int:
    return x * x


def _fail_on_two(x: int) -> int:
    if x == 2:
        raise ValueError("boom on two")
    return x


def _die(x: int) -> int:  # pragma: no cover - runs in a worker
    os._exit(13)


def _count(x: int) -> int:
    obs.add("pooltest.count", x)
    obs.add("pooltest.half", 0.5)
    return x


#: Worker-local slot written by a broadcast, read by later tasks.
_INSTALLED = None


def _install(value):  # pragma: no cover - runs in workers
    global _INSTALLED
    _INSTALLED = value  # reprolint: disable=REP009 -- post-fork, worker-local install
    return True


def _read_installed(_):  # pragma: no cover - runs in workers
    return _INSTALLED


class TestRunBatch:
    def test_results_in_submission_order(self):
        with WorkerPool(3) as pool:
            assert pool.run_batch(_square, list(range(20))) == [
                i * i for i in range(20)
            ]

    def test_more_workers_than_tasks(self):
        with WorkerPool(4) as pool:
            assert pool.run_batch(_square, [3]) == [9]

    def test_empty_batch(self):
        with WorkerPool(2) as pool:
            assert pool.run_batch(_square, []) == []

    def test_pool_reused_across_batches(self):
        # The whole point: one fork, many stages.
        with WorkerPool(2) as pool:
            first = pool.run_batch(_square, [1, 2, 3])
            second = pool.run_batch(_square, [4, 5, 6])
        assert first == [1, 4, 9]
        assert second == [16, 25, 36]

    def test_labels_must_match_payloads(self):
        with WorkerPool(2) as pool:
            with pytest.raises(ValueError):
                pool.run_batch(_square, [1, 2], labels=["only-one"])

    def test_task_exception_reaches_parent(self):
        with WorkerPool(2) as pool:
            with pytest.raises(ValueError, match="boom on two"):
                pool.run_batch(_fail_on_two, [0, 1, 2, 3])
            # A failing *task* does not kill its worker; the pool
            # stays usable for the caller to decide what to do.
            assert not pool.closed
            assert pool.run_batch(_square, [5]) == [25]


class TestCrashSafety:
    def test_dead_worker_raises_instead_of_hanging(self):
        pool = WorkerPool(2)
        try:
            with pytest.raises(WorkerCrashed, match="died"):
                pool.run_batch(_die, [1, 2])
            # A crash poisons the pool: it cannot be trusted further.
            assert pool.closed
            with pytest.raises(PoolClosed):
                pool.run_batch(_square, [1])
        finally:
            pool.close()

    def test_crash_during_broadcast_raises(self):
        pool = WorkerPool(2)
        try:
            with pytest.raises(WorkerCrashed):
                pool.broadcast(_die, None)
            assert pool.closed
        finally:
            pool.close()


class TestShutdown:
    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.close()
        pool.close()
        pool.close()
        assert pool.closed

    def test_use_after_close_raises(self):
        pool = WorkerPool(2)
        pool.close()
        with pytest.raises(PoolClosed):
            pool.run_batch(_square, [1])
        with pytest.raises(PoolClosed):
            pool.broadcast(_install, 1)

    def test_context_manager_closes(self):
        with WorkerPool(2) as pool:
            assert not pool.closed
        assert pool.closed

    def test_workers_are_reaped(self):
        pool = WorkerPool(2)
        processes = list(pool._workers)
        pool.close()
        assert all(not p.is_alive() for p in processes)

    def test_minimum_width(self):
        with pytest.raises(ValueError):
            WorkerPool(1)

    def test_stop_opcode_is_distinct(self):
        # The stop opcode shares the task pipe; a clash with the task
        # opcode would shut workers down mid-batch.
        assert _OP_STOP != "task"


class TestBroadcast:
    def test_broadcast_installs_worker_local_state(self):
        with WorkerPool(2) as pool:
            acks = pool.broadcast(_install, {"payload": 42})
            assert acks == [True, True]
            # Every worker sees the installed state in later tasks.
            seen = pool.run_batch(_read_installed, [None] * 6)
            assert seen == [{"payload": 42}] * 6
        # The parent's module global never changed (worker-local).
        assert _INSTALLED is None


class TestCounterFolding:
    def test_pool_counters_match_serial(self):
        payloads = list(range(1, 7))
        serial = obs.Tracer()
        with obs.activate(serial):
            for value in payloads:
                _count(value)
        pooled = obs.Tracer()
        with obs.activate(pooled):
            # The pool inherits the active tracer at fork time, like
            # collectors inherit the world.
            with WorkerPool(3) as pool:
                pool.run_batch(_count, payloads)
        for name in ("pooltest.count", "pooltest.half"):
            s = serial.metrics.counter(name)
            p = pooled.metrics.counter(name)
            assert s == p
            assert type(s) is type(p)  # ints stay ints across the fork

    def test_worker_stats_recorded(self):
        tracer = obs.Tracer()
        with obs.activate(tracer):
            with WorkerPool(2) as pool:
                pool.run_batch(_square, list(range(8)))
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["fanout.tasks"] == 8
        assert counters["worker.0.tasks"] >= 1
