"""Unit tests for the public-suffix table."""

import pytest

from repro.domains.psl import (
    DEFAULT_SUFFIXES,
    PublicSuffixTable,
    default_suffix_table,
)


@pytest.fixture(scope="module")
def table():
    return default_suffix_table()


class TestSuffixMatching:
    def test_simple_tld(self, table):
        assert table.public_suffix("example.com") == "com"

    def test_multi_label_suffix(self, table):
        assert table.public_suffix("example.co.uk") == "co.uk"

    def test_deep_subdomain(self, table):
        assert table.public_suffix("a.b.c.example.org") == "org"

    def test_unknown_tld_implicit_rule(self, table):
        assert table.public_suffix("example.zz") == "zz"

    def test_wildcard_rule(self, table):
        # *.ck: one label under ck is itself a public suffix.
        assert table.public_suffix("foo.bar.ck") == "bar.ck"

    def test_wildcard_exception(self, table):
        # !www.ck: www.ck is NOT a public suffix despite *.ck.
        assert table.registered_domain("www.ck") == "www.ck"

    def test_case_insensitive(self, table):
        assert table.public_suffix("Example.COM") == "com"

    def test_trailing_dot(self, table):
        assert table.public_suffix("example.com.") == "com"


class TestRegisteredDomain:
    def test_second_level(self, table):
        assert table.registered_domain("ucsd.edu") == "ucsd.edu"

    def test_subdomain_stripped(self, table):
        assert table.registered_domain("cs.ucsd.edu") == "ucsd.edu"

    def test_multi_label_suffix(self, table):
        assert (
            table.registered_domain("shop.example.co.uk") == "example.co.uk"
        )

    def test_bare_suffix_is_none(self, table):
        assert table.registered_domain("com") is None
        assert table.registered_domain("co.uk") is None

    def test_is_public_suffix(self, table):
        assert table.is_public_suffix("com")
        assert not table.is_public_suffix("example.com")

    def test_wildcard_registered_domain(self, table):
        assert table.registered_domain("x.foo.bar.ck") == "foo.bar.ck"


class TestTableConstruction:
    def test_empty_rules_fall_back_to_implicit(self):
        t = PublicSuffixTable([])
        assert t.public_suffix("a.b.c") == "c"

    def test_blank_rules_skipped(self):
        t = PublicSuffixTable(["", "  ", "com"])
        assert t.public_suffix("x.com") == "com"

    def test_known_tlds_sorted(self, table):
        tlds = table.known_tlds()
        assert list(tlds) == sorted(tlds)
        assert "com" in tlds

    def test_suffix_length_rejects_empty(self, table):
        with pytest.raises(ValueError):
            table.suffix_length([])

    def test_default_table_is_shared(self):
        assert default_suffix_table() is default_suffix_table()

    def test_default_rules_cover_zone_tlds(self):
        # The DNS oracle's seven TLDs must all be known suffixes.
        for tld in ("com", "net", "org", "biz", "us", "aero", "info"):
            assert tld in DEFAULT_SUFFIXES

    def test_longest_rule_wins(self):
        t = PublicSuffixTable(["uk", "co.uk"])
        assert t.public_suffix("x.co.uk") == "co.uk"
        assert t.registered_domain("x.co.uk") == "x.co.uk"
