"""Unit tests for the recommendation engine (toy + small worlds)."""

import pytest

from repro.analysis import FeedComparison
from repro.analysis.recommend import (
    Question,
    diverse_portfolio,
    portfolio_coverage,
    rank_feeds,
    recommend,
)

from tests.test_analysis_context import make_feeds


@pytest.fixture()
def comparison(toy_world):
    return FeedComparison(toy_world, make_feeds(), seed=0)


class TestRanking:
    def test_coverage_ranks_hu_first(self, comparison):
        ranking = rank_feeds(comparison, Question.COVERAGE)
        assert ranking[0].feed in ("Hu", "mx1")  # both cover 2/3
        assert all(
            a.score >= b.score for a, b in zip(ranking, ranking[1:])
        )

    def test_filtering_penalizes_benign(self, comparison):
        ranking = {s.feed: s for s in rank_feeds(comparison, Question.FILTERING)}
        # dbl carries no Alexa/ODP domains; Hu and mx1 each carry one.
        assert ranking["dbl"].score > ranking["mx1"].score

    def test_proportionality_requires_volume(self, comparison):
        scores = {s.feed: s for s in rank_feeds(
            comparison, Question.PROPORTIONALITY
        )}
        assert scores["Hu"].score == 0.0  # no volume info
        assert scores["Hu"].rationale == "no per-message volume information"
        # mx1 is scored against the oracle (even if the toy campaigns
        # barely overlap the 5-day window, giving distance ~1).
        assert "variation distance" in scores["mx1"].rationale

    def test_duration_prefers_live_mail_feeds(self, comparison):
        scores = {s.feed: s for s in rank_feeds(comparison, Question.DURATION)}
        assert scores["mx1"].score > scores["Hu"].score
        assert scores["mx1"].score > scores["dbl"].score

    def test_onset_scores_bounded(self, comparison):
        for score in rank_feeds(comparison, Question.ONSET):
            assert 0.0 < score.score <= 1.0

    def test_recommend_returns_top(self, comparison):
        best = recommend(comparison, Question.COVERAGE)
        assert best.feed == rank_feeds(comparison, Question.COVERAGE)[0].feed

    def test_rationales_present(self, comparison):
        for question in Question:
            for score in rank_feeds(comparison, question):
                assert score.rationale
                assert score.feed in str(score)


class TestPortfolio:
    def test_greedy_selects_complementary_feeds(self, comparison):
        portfolio = diverse_portfolio(comparison, 2, kind="tagged")
        # First pick covers 2 of 3 tagged domains; second must add the
        # remaining domain, not duplicate the first.
        assert len(portfolio) == 2
        assert portfolio_coverage(comparison, portfolio) == 1.0

    def test_portfolio_stops_when_no_gain(self, comparison):
        portfolio = diverse_portfolio(comparison, 10, kind="tagged")
        assert len(portfolio) <= 3
        assert portfolio_coverage(comparison, portfolio) == 1.0

    def test_size_validation(self, comparison):
        with pytest.raises(ValueError):
            diverse_portfolio(comparison, 0)


class TestOnSmallWorld:
    def test_paper_guidelines_emerge(self, small_comparison):
        # Section 5: human-identified feeds are the best default for
        # coverage; blacklists the best for filtering purity.
        best_coverage = recommend(small_comparison, Question.COVERAGE)
        assert best_coverage.feed in ("Hu", "mx2")
        filtering = {
            s.feed: s.score
            for s in rank_feeds(small_comparison, Question.FILTERING)
        }
        assert filtering["dbl"] > filtering["Ac2"]

    def test_portfolio_prefers_diversity(self, small_comparison):
        portfolio = diverse_portfolio(small_comparison, 3, kind="live")
        # Never two MX honeypots before a human/hybrid source is in.
        mx_members = [f for f in portfolio if f.startswith("mx")]
        assert len(mx_members) <= 2
