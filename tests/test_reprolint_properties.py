"""Property tests (hypothesis) for reprolint's pragma grammar and graph.

Two surfaces where hand-picked examples are weakest:

* pragma parsing (``config._parse_pragma`` / ``config.scan_pragmas``) --
  the grammar must accept every spelling the regex admits and reject
  everything else, and the scan must agree line-by-line with parsing
  each line in isolation;
* call-graph construction (``graph.ProjectGraph``) over generated
  module trees -- import cycles, re-export chains, and aliased imports
  must never crash or fail to terminate, and resolution must only ever
  land on functions that exist.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devtools.config import (
    ALL_RULES,
    DEFAULT_RULES,
    FILE_PRAGMA_WINDOW,
    _parse_pragma,
    scan_pragmas,
)
from repro.devtools.graph import ProjectGraph, module_name_for
from repro.devtools.summaries import summarize_source

# ---------------------------------------------------------------------------
# Pragma parsing
# ---------------------------------------------------------------------------

_rule_code = st.sampled_from(sorted(DEFAULT_RULES))
_spaces = st.text(alphabet=" ", min_size=0, max_size=2)
_justification = st.one_of(
    st.just(""),
    st.text(
        alphabet=string.ascii_letters + " ", min_size=1, max_size=20
    ).map(lambda s: "  -- " + s),
)


@st.composite
def _pragma_comment(draw):
    """A syntactically valid pragma and the rule set it should yield."""
    codes = draw(
        st.one_of(
            st.none(),
            st.lists(_rule_code, min_size=1, max_size=4),
        )
    )
    gap = draw(_spaces)
    text = f"#{gap}reprolint:{draw(_spaces)}disable"
    if codes is None:
        expected = ALL_RULES
    else:
        joiner = draw(st.sampled_from([",", ", ", " , "]))
        text += f"{draw(_spaces)}={draw(_spaces)}" + joiner.join(codes)
        expected = frozenset(codes)
    text += draw(_justification)
    return text, expected


class TestPragmaParsing:
    @given(_pragma_comment())
    @settings(max_examples=200)
    def test_valid_pragmas_parse_to_expected_rules(self, case):
        text, expected = case
        assert _parse_pragma(text) == expected

    @given(st.text(max_size=60))
    @settings(max_examples=200)
    def test_arbitrary_text_never_crashes(self, text):
        result = _parse_pragma(text)
        assert result is None or isinstance(result, frozenset)

    @given(st.text(alphabet=string.printable, max_size=60))
    @settings(max_examples=200)
    def test_non_pragma_comments_are_ignored(self, text):
        # Lines that never mention the pragma keyword must parse to None.
        if "reprolint" in text:
            return
        assert _parse_pragma(text) is None

    @given(
        st.lists(
            st.tuples(
                st.booleans(),  # pragma line?
                st.booleans(),  # indented (code line) or comment-only?
                st.lists(_rule_code, min_size=0, max_size=2),
            ),
            min_size=0,
            max_size=12,
        )
    )
    @settings(max_examples=150)
    def test_scan_agrees_with_per_line_parse(self, rows):
        lines = []
        for is_pragma, indented, codes in rows:
            if not is_pragma:
                lines.append("x = 1")
                continue
            prefix = "x = 1  " if indented else ""
            suffix = "=" + ",".join(codes) if codes else ""
            lines.append(f"{prefix}# reprolint: disable{suffix}")
        source = "\n".join(lines)
        index = scan_pragmas(source)

        expected_file_wide = frozenset()
        for lineno, text in enumerate(source.splitlines(), start=1):
            rules = _parse_pragma(text)
            if rules is None:
                assert lineno not in index.by_line
                continue
            assert index.by_line[lineno] == rules
            comment_only = text.lstrip().startswith("#")
            if comment_only and lineno <= FILE_PRAGMA_WINDOW:
                expected_file_wide |= rules
        assert index.file_wide == expected_file_wide

    @given(_rule_code, st.integers(1, 40))
    @settings(max_examples=100)
    def test_file_pragma_window_is_sharp(self, code, lineno):
        source = "\n" * (lineno - 1) + f"# reprolint: disable={code}\n"
        index = scan_pragmas(source)
        if lineno <= FILE_PRAGMA_WINDOW:
            assert code in index.file_wide
            assert index.is_suppressed(code, lineno + 500)
        else:
            assert code not in index.file_wide
            assert not index.is_suppressed(code, lineno + 500)
            assert index.is_suppressed(code, lineno)


# ---------------------------------------------------------------------------
# Call-graph construction on generated module trees
# ---------------------------------------------------------------------------

_MODULES = ["alpha", "beta", "gamma", "delta"]
_FUNCS = ["f", "g", "h"]


@st.composite
def _module_tree(draw):
    """Generate package sources with imports, aliases, and re-exports.

    Every module defines a few functions; between modules we draw
    arbitrary ``import``/``from .. import .. as ..`` edges, which can
    form cycles, and calls through those edges.  The generator is
    deliberately unconstrained: the property under test is that graph
    construction and resolution terminate without crashing on *any*
    such tree, not that resolution succeeds.
    """
    n_modules = draw(st.integers(2, len(_MODULES)))
    names = _MODULES[:n_modules]
    sources = {}
    for mod in names:
        lines = []
        for other in names:
            if other == mod:
                continue
            edge = draw(st.sampled_from(["none", "import", "from", "alias"]))
            if edge == "import":
                lines.append(f"import repro.pkg.{other}")
            elif edge == "from":
                sym = draw(st.sampled_from(_FUNCS))
                lines.append(f"from repro.pkg.{other} import {sym}")
            elif edge == "alias":
                sym = draw(st.sampled_from(_FUNCS))
                # Re-export under a different name: downstream modules
                # may import the alias, forming re-export chains.
                alias = draw(st.sampled_from(["ff", "gg", sym]))
                lines.append(f"from repro.pkg.{other} import {sym} as {alias}")
        n_funcs = draw(st.integers(1, len(_FUNCS)))
        for func in _FUNCS[:n_funcs]:
            lines.append(f"def {func}():")
            call = draw(
                st.sampled_from(
                    _FUNCS
                    + [f"repro.pkg.{m}.{f}" for m in names for f in _FUNCS[:1]]
                    + ["ff", "gg", "unknown_name"]
                )
            )
            lines.append(f"    return {call}()")
        sources[mod] = "\n".join(lines) + "\n"
    return sources


def _build_graph(sources):
    summaries = [
        summarize_source(f"/x/pkg/{mod}.py", text, relpkg=f"pkg/{mod}.py")
        for mod, text in sources.items()
    ]
    return ProjectGraph(summaries), summaries


class TestGraphProperties:
    @given(_module_tree())
    @settings(max_examples=80, deadline=None)
    def test_construction_and_resolution_terminate(self, sources):
        graph, summaries = _build_graph(sources)
        for summary in summaries:
            module = module_name_for(summary.path, summary.relpkg)
            for func in summary.functions:
                caller = (module, func.qualname)
                for ref in func.calls:
                    for target in graph.resolve_call(caller, ref):
                        # Resolution only lands on functions that exist.
                        assert target in graph.functions
                        graph.summary_of(target)

    @given(_module_tree())
    @settings(max_examples=60, deadline=None)
    def test_symbol_resolution_survives_import_cycles(self, sources):
        graph, _ = _build_graph(sources)
        for module in list(graph.modules):
            for name in _FUNCS + ["ff", "gg", "nope"]:
                resolved = graph.resolve_symbol(module, name)
                assert resolved is None or resolved in graph.functions

    @given(_module_tree())
    @settings(max_examples=40, deadline=None)
    def test_reachability_is_closed_and_terminates(self, sources):
        graph, _ = _build_graph(sources)
        roots = sorted(graph.functions)[:3]
        origin = graph.reachable_from(roots)
        for func, root in origin.items():
            assert func in graph.functions
            assert root in roots

    @given(_module_tree())
    @settings(max_examples=40, deadline=None)
    def test_unordered_closure_terminates_on_cycles(self, sources):
        graph, _ = _build_graph(sources)
        for func in graph.functions:
            assert graph.returns_unordered(func) in (True, False)

    def test_explicit_two_module_import_cycle(self):
        sources = {
            "alpha": "from repro.pkg.beta import g\ndef f():\n    return g()\n",
            "beta": "from repro.pkg.alpha import f\ndef g():\n    return f()\n",
        }
        graph, _ = _build_graph(sources)
        assert graph.resolve_symbol("repro.pkg.alpha", "g") == ("repro.pkg.beta", "g")
        assert graph.resolve_symbol("repro.pkg.beta", "f") == ("repro.pkg.alpha", "f")

    def test_self_referential_reexport_terminates(self):
        # A symbol re-exported from the module itself must not loop.
        sources = {"alpha": "from repro.pkg.alpha import f as f\n"}
        graph, _ = _build_graph(sources)
        assert graph.resolve_symbol("repro.pkg.alpha", "f") is None
