"""Unit tests for domain-name generators."""

import random

import pytest

from repro.domains.names import (
    BenignNameGenerator,
    DgaNameGenerator,
    SpamNameGenerator,
    is_plausible_dga,
    merge_disjoint,
    unique_names,
)
from repro.domains.parse import normalize_domain


class TestSpamNameGenerator:
    def test_names_are_valid_domains(self):
        gen = SpamNameGenerator(random.Random(1), "pharma")
        for name in gen.generate_batch(200):
            assert normalize_domain(name) == name

    def test_no_duplicates(self):
        gen = SpamNameGenerator(random.Random(2), "replica")
        names = gen.generate_batch(500)
        assert len(set(names)) == 500

    def test_deterministic(self):
        a = SpamNameGenerator(random.Random(3), "software").generate_batch(10)
        b = SpamNameGenerator(random.Random(3), "software").generate_batch(10)
        assert a == b

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            SpamNameGenerator(random.Random(0), "weapons")

    def test_issued_tracking(self):
        gen = SpamNameGenerator(random.Random(4), "pharma")
        names = gen.generate_batch(25)
        assert gen.issued_count == 25
        assert gen.issued() == set(names)

    def test_category_flavor(self):
        gen = SpamNameGenerator(random.Random(5), "pharma")
        joined = " ".join(gen.generate_batch(300))
        assert any(word in joined for word in ("pill", "rx", "med", "pharma"))


class TestBenignNameGenerator:
    def test_valid_and_unique(self):
        gen = BenignNameGenerator(random.Random(6))
        names = gen.generate_batch(300)
        assert len(set(names)) == 300
        for name in names[:50]:
            assert normalize_domain(name) == name


class TestDgaNameGenerator:
    def test_length_bounds(self):
        gen = DgaNameGenerator(random.Random(7), min_len=9, max_len=12)
        for name in gen.generate_batch(100):
            label = name.split(".")[0]
            assert 9 <= len(label) <= 12

    def test_mostly_dga_flagged(self):
        gen = DgaNameGenerator(random.Random(8))
        names = gen.generate_batch(300)
        flagged = sum(1 for n in names if is_plausible_dga(n))
        assert flagged / len(names) > 0.7

    def test_bad_length_config(self):
        with pytest.raises(ValueError):
            DgaNameGenerator(random.Random(0), min_len=10, max_len=5)
        with pytest.raises(ValueError):
            DgaNameGenerator(random.Random(0), min_len=1, max_len=5)

    def test_large_batch_unique(self):
        gen = DgaNameGenerator(random.Random(9))
        names = gen.generate_batch(20_000)
        assert len(set(names)) == 20_000


class TestIsPlausibleDga:
    def test_benign_words_not_flagged(self):
        for name in ("newsonline.com", "megaportal.org", "travelzone.net"):
            assert not is_plausible_dga(name)

    def test_short_names_not_flagged(self):
        assert not is_plausible_dga("xkcd.com")

    def test_digits_not_flagged(self):
        assert not is_plausible_dga("qwrtypsdfg99.com")

    def test_consonant_soup_flagged(self):
        assert is_plausible_dga("pqwxrtzkvbn.com")


class TestHelpers:
    def test_unique_names(self):
        gen = BenignNameGenerator(random.Random(10))
        assert len(unique_names(gen, 5)) == 5

    def test_merge_disjoint_ok(self):
        merged = merge_disjoint(["a.com"], ["b.com"], {"c.com"})
        assert merged == {"a.com", "b.com", "c.com"}

    def test_merge_disjoint_detects_overlap(self):
        with pytest.raises(ValueError):
            merge_disjoint(["a.com"], ["a.com"])
