"""Unit tests for message-level rendering."""

import random

import pytest

from repro.domains.url import parse_url, try_domain_of_url
from repro.ecosystem.messages import (
    iter_world_messages,
    messages_to_records,
    render_message,
    render_url,
    sample_messages,
)


class TestRenderUrl:
    def test_parseable_and_normalizes_back(self):
        rng = random.Random(1)
        for _ in range(100):
            url = render_url(rng, "pillstore.info")
            assert try_domain_of_url(url) == "pillstore.info"

    def test_affiliate_id_embedded(self):
        rng = random.Random(2)
        url = render_url(rng, "shop.biz", affiliate_id=42)
        assert "aff=42" in url

    def test_scheme_is_http(self):
        rng = random.Random(3)
        assert parse_url(render_url(rng, "x.com")).scheme == "http"


class TestRenderMessage:
    def test_primary_url_is_storefront(self, toy_world):
        campaign = toy_world.campaigns[0]
        placement = campaign.placements[0]
        rng = random.Random(4)
        message = render_message(rng, toy_world, campaign, placement, 100)
        assert try_domain_of_url(message.primary_url) == placement.domain
        assert message.campaign_id == campaign.campaign_id

    def test_chaff_url_appended_when_forced(self, toy_world):
        campaign = toy_world.campaigns[0]
        campaign.chaff_probability = 1.0  # Campaign is a mutable dataclass
        placement = campaign.placements[0]
        rng = random.Random(5)
        message = render_message(rng, toy_world, campaign, placement, 100)
        assert len(message.urls) == 2
        assert try_domain_of_url(message.urls[1]) == "megaportal.com"


class TestSampleMessages:
    def test_count_and_ordering(self, toy_world):
        campaign = toy_world.campaigns[0]
        messages = sample_messages(toy_world, campaign, 50, random.Random(6))
        assert len(messages) == 50
        times = [m.time for m in messages]
        assert times == sorted(times)

    def test_times_within_placements(self, toy_world):
        campaign = toy_world.campaigns[0]
        intervals = [
            (p.start, p.end) for p in campaign.placements
        ]
        for message in sample_messages(
            toy_world, campaign, 80, random.Random(7)
        ):
            assert any(s <= message.time < e for s, e in intervals)

    def test_volume_proportional_sampling(self, toy_world):
        campaign = toy_world.campaigns[0]  # volumes 50k vs 60k
        messages = sample_messages(
            toy_world, campaign, 2000, random.Random(8)
        )
        domains = [try_domain_of_url(m.primary_url) for m in messages]
        first = domains.count("loudpills.com")
        second = domains.count("loudpills2.net")
        assert 0.6 < first / second < 1.1  # ~50/60

    def test_negative_count_rejected(self, toy_world):
        with pytest.raises(ValueError):
            sample_messages(toy_world, toy_world.campaigns[0], -1,
                            random.Random(0))


class TestRecordConversion:
    def test_records_match_urls(self, toy_world):
        messages = sample_messages(
            toy_world, toy_world.campaigns[1], 10, random.Random(9)
        )
        records = messages_to_records(messages)
        assert len(records) >= 10
        assert all(r.domain == "quietwatch.biz" for r in records[:10])

    def test_iter_world_messages(self, toy_world):
        messages = list(iter_world_messages(toy_world, per_campaign=5))
        assert len(messages) == 10  # 2 campaigns x 5

    def test_deterministic(self, toy_world):
        a = list(iter_world_messages(toy_world, 5, seed=3))
        b = list(iter_world_messages(toy_world, 5, seed=3))
        assert a == b
