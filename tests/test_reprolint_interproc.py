"""The interprocedural reprolint rules (REP009-REP012) and v2 engine.

Covers the seeded known-bad fixtures the issue calls for
(global-mutation-in-task, shared-stream-across-fanout), the
soundness-limit negatives, the incremental cache (warm == cold, byte
for byte), parallel linting stability, SARIF output, and the CLI
exit-code contract.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.devtools import (
    LintConfig,
    ProjectGraph,
    lint_paths,
    lint_source,
    render_sarif,
    summarize_source,
)
from repro.devtools.graph import module_name_for
from repro.devtools.lint import (
    SUMMARY_KIND,
    engine_fingerprint,
    summarize_path,
)
from repro.io.artifacts import ArtifactCache
from repro.store.backend import (
    STORE_SCHEMA_COLUMNS,
    STORE_SCHEMA_PIN,
    STORE_VERSION,
)

HERE = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(os.path.dirname(HERE), "src")
PACKAGE_DIR = os.path.join(SRC_DIR, "repro")


def findings_for(source, path="/fixtures/snippet.py"):
    return lint_source(path, textwrap.dedent(source))


def rules_hit(source, path="/fixtures/snippet.py"):
    return {f.rule for f in findings_for(source, path)}


FANOUT_IMPORT = "from repro.parallel.fanout import ordered_fanout\n"


# ----------------------------------------------------------------------
# REP009: fork-safety
# ----------------------------------------------------------------------


class TestRep009ForkSafety:
    def test_global_mutation_in_task(self):
        # The issue's seeded known-bad fixture: a task body assigns a
        # module global through `global`.
        findings = findings_for(
            """
            from repro.parallel.fanout import ordered_fanout
            COUNT = 0

            def work():
                global COUNT
                COUNT = COUNT + 1
                return COUNT

            def run_all():
                return ordered_fanout([work], jobs=2)
            """
        )
        assert [f.rule for f in findings] == ["REP009"]
        assert "COUNT" in findings[0].message
        assert "fan-out" in findings[0].message

    def test_mutating_method_on_module_object(self):
        assert "REP009" in rules_hit(
            """
            from repro.parallel.fanout import ordered_fanout
            RESULTS = []

            def work():
                RESULTS.append(1)
                return len(RESULTS)

            def run_all():
                return ordered_fanout([work], jobs=2)
            """
        )

    def test_closed_over_mutation_through_lambda(self):
        assert "REP009" in rules_hit(
            """
            from repro.parallel.fanout import ordered_fanout
            def run_all():
                shared = []
                tasks = [lambda: shared.append(1) for _ in range(3)]
                return ordered_fanout(tasks, jobs=2)
            """
        )

    def test_subscript_store_on_module_dict(self):
        assert "REP009" in rules_hit(
            """
            from repro.parallel.fanout import ordered_fanout
            CACHE = {}

            def work():
                CACHE["k"] = 1
                return CACHE

            def run_all():
                return ordered_fanout([work], jobs=2)
            """
        )

    def test_write_reached_through_a_call_chain(self):
        # The write is two calls below the task root.
        assert "REP009" in rules_hit(
            """
            from repro.parallel.fanout import ordered_fanout
            STATE = {}

            def inner():
                STATE["k"] = 1

            def middle():
                inner()

            def work():
                middle()
                return 1

            def run_all():
                return ordered_fanout([work], jobs=2)
            """
        )

    def test_unreachable_writer_is_clean(self):
        # The same write NOT reachable from any fan-out is fine.
        assert rules_hit(
            """
            from repro.parallel.fanout import ordered_fanout
            STATE = {}

            def writer():
                STATE["k"] = 1

            def work():
                return 1

            def run_all():
                return ordered_fanout([work], jobs=2)
            """
        ) == set()

    def test_local_and_returned_state_is_clean(self):
        # The fixed shape: tasks build and return their own state.
        assert rules_hit(
            """
            from repro.parallel.fanout import ordered_fanout
            def work():
                local = []
                local.append(1)
                return local

            def run_all():
                parts = ordered_fanout([work], jobs=2)
                merged = []
                for part in parts:
                    merged.extend(part)
                return merged
            """
        ) == set()

    def test_namespace_call_is_not_a_mutation(self):
        # obs.add(...) is a call into an imported module's function,
        # not a method on a shared object.
        assert rules_hit(
            """
            from repro.parallel.fanout import ordered_fanout
            from repro import obs

            def work():
                obs.add("tasks")
                return 1

            def run_all():
                return ordered_fanout([work], jobs=2)
            """
        ) == set()

    def test_pragma_suppresses_with_justification(self):
        assert rules_hit(
            """
            from repro.parallel.fanout import ordered_fanout
            MEMO = {}

            def work():
                MEMO["pin"] = 1  # reprolint: disable=REP009 -- idempotent memo
                return 1

            def run_all():
                return ordered_fanout([work], jobs=2)
            """
        ) == set()


# ----------------------------------------------------------------------
# REP009/REP010 over worker-pool dispatches
# ----------------------------------------------------------------------


class TestPoolDispatchBoundaries:
    """``pool.run_batch(fn, ...)``/``pool.broadcast(fn, ...)`` are
    fan-out boundaries: the submitted callable runs in forked workers,
    so the same reachability rules apply to it."""

    def test_global_mutation_in_pool_task(self):
        # Seeded known-bad fixture: a run_batch-submitted task assigns
        # a module global; the write dies with the worker.
        findings = findings_for(
            """
            from repro.parallel.pool import WorkerPool
            COUNT = 0

            def work(payload):
                global COUNT
                COUNT = COUNT + payload
                return COUNT

            def run_all(payloads):
                with WorkerPool(2) as pool:
                    return pool.run_batch(work, payloads)
            """
        )
        assert [f.rule for f in findings] == ["REP009"]
        assert "COUNT" in findings[0].message

    def test_broadcast_task_mutating_module_state(self):
        findings = findings_for(
            """
            from repro.parallel.pool import WorkerPool
            CACHE = {}

            def install(payload):
                CACHE["state"] = payload
                return True

            def prime(pool, payload):
                return pool.broadcast(install, payload)
            """
        )
        assert [f.rule for f in findings] == ["REP009"]
        assert "CACHE" in findings[0].message

    def test_run_stream_task_is_fanout_root(self):
        # Seeded known-bad fixture from the sharded world build: a
        # run_stream-submitted shard builder that "registers" domains
        # into a shared module-level registry.  The writes land in the
        # worker fork and silently vanish from the parent -- exactly
        # the bug the sharded build avoids by returning packed shards.
        findings = findings_for(
            """
            from repro.parallel.pool import WorkerPool
            SHARED_REGISTRY = {}

            def build_shard(span):
                lo, hi = span
                for index in range(lo, hi):
                    SHARED_REGISTRY[index] = "built"
                return hi - lo

            def build_all(spans):
                with WorkerPool(2) as pool:
                    return list(pool.run_stream(build_shard, spans))
            """
        )
        assert [f.rule for f in findings] == ["REP009"]
        assert "SHARED_REGISTRY" in findings[0].message

    def test_pure_run_stream_task_is_clean(self):
        assert rules_hit(
            """
            from repro.parallel.pool import WorkerPool

            def build_shard(span):
                lo, hi = span
                return [(index, "built") for index in range(lo, hi)]

            def build_all(spans):
                with WorkerPool(2) as pool:
                    return list(pool.run_stream(build_shard, spans))
            """
        ) == set()

    def test_shared_stream_in_pool_task(self):
        findings = findings_for(
            """
            from random import Random
            from repro.parallel.pool import WorkerPool
            shared_rng = Random(7)

            def draw(payload):
                return shared_rng.random() + payload

            def run_all(pool, payloads):
                return pool.run_batch(draw, payloads)
            """
        )
        assert [f.rule for f in findings] == ["REP010"]

    def test_pure_pool_task_is_clean(self):
        assert rules_hit(
            """
            from repro.parallel.pool import WorkerPool

            def work(payload):
                return payload * payload

            def run_all(payloads):
                with WorkerPool(2) as pool:
                    return pool.run_batch(work, payloads)
            """
        ) == set()

    def test_pragma_suppresses_pool_finding(self):
        assert rules_hit(
            """
            from repro.parallel.pool import WorkerPool
            _STATE = {}

            def install(payload):
                _STATE["x"] = payload  # reprolint: disable=REP009 -- post-fork, worker-local install
                return True

            def prime(pool, payload):
                return pool.broadcast(install, payload)
            """
        ) == set()


# ----------------------------------------------------------------------
# REP010: RNG stream discipline
# ----------------------------------------------------------------------


class TestRep010StreamDiscipline:
    def test_shared_stream_across_fanout(self):
        # The issue's seeded known-bad fixture: a module-level
        # sequential stream consumed inside fan-out work.
        findings = findings_for(
            """
            from random import Random
            from repro.parallel.fanout import ordered_fanout
            shared_rng = Random(7)

            def draw():
                return shared_rng.random()

            def run_all():
                return ordered_fanout([draw], jobs=2)
            """
        )
        assert [f.rule for f in findings] == ["REP010"]
        assert "module-level RNG stream" in findings[0].message
        assert "derive_rng" in findings[0].message

    def test_closed_over_stream_in_lambda(self):
        assert "REP010" in rules_hit(
            """
            from random import Random
            from repro.parallel.fanout import ordered_fanout
            def run_all():
                rng = Random(7)
                tasks = [lambda: rng.random() for _ in range(3)]
                return ordered_fanout(tasks, jobs=2)
            """
        )

    def test_shared_stream_passed_into_drawing_helper(self):
        findings = findings_for(
            """
            from random import Random
            from repro.parallel.fanout import ordered_fanout
            shared_rng = Random(7)

            def helper(rng):
                return rng.random()

            def work():
                return helper(shared_rng)

            def run_all():
                return ordered_fanout([work], jobs=2)
            """
        )
        assert {f.rule for f in findings} == {"REP010"}
        assert any("passes" in f.message for f in findings)

    def test_shared_object_with_sequential_self_stream(self):
        # The mail-oracle bug class (fixed by hand in an earlier PR):
        # a shared object's method draws from self.rng created at
        # construction time.
        findings = findings_for(
            """
            from random import Random
            from repro.parallel.fanout import ordered_fanout
            class Oracle:
                def __init__(self):
                    self.rng = Random(7)

                def observe(self):
                    return self.rng.random()

            ORACLE = Oracle()

            def work():
                return ORACLE.observe()

            def run_all():
                return ordered_fanout([work], jobs=2)
            """
        )
        assert {f.rule for f in findings} == {"REP010"}
        assert any("sequential self-attribute" in f.message for f in findings)

    def test_per_task_derived_stream_is_clean(self):
        assert rules_hit(
            """
            from repro.stats.rng import derive_rng
            from repro.parallel.fanout import ordered_fanout
            def work(label):
                rng = derive_rng(7, label)
                return rng.random()

            def run_all():
                tasks = [lambda: work("a"), lambda: work("b")]
                return ordered_fanout(tasks, jobs=2)
            """
        ) == set()

    def test_draw_outside_fanout_is_clean(self):
        assert rules_hit(
            """
            from random import Random
            shared_rng = Random(7)

            def draw():
                return shared_rng.random()
            """
        ) == set()


# ----------------------------------------------------------------------
# REP011: cross-boundary float accumulation
# ----------------------------------------------------------------------


class TestRep011CrossBoundarySums:
    def test_sum_over_set_returning_helper(self):
        findings = findings_for(
            """
            def helper():
                return {1.5, 2.5}

            def total():
                return sum(helper())
            """
        )
        assert [f.rule for f in findings] == ["REP011"]
        assert "helper" in findings[0].message

    def test_transitively_unordered_return(self):
        # middle() just forwards helper()'s unordered result.
        assert "REP011" in rules_hit(
            """
            def helper():
                return set()

            def middle():
                return helper()

            def total():
                return sum(middle())
            """
        )

    def test_sorted_wrapper_is_clean(self):
        assert rules_hit(
            """
            def helper():
                return {1.5, 2.5}

            def total():
                return sum(sorted(helper()))
            """
        ) == set()

    def test_list_returning_helper_is_clean(self):
        assert rules_hit(
            """
            def helper():
                return [1.5, 2.5]

            def total():
                return sum(helper())
            """
        ) == set()

    def test_scope_gate_matches_rep004(self):
        # Outside the accumulation packages (inside the repro package
        # but not analysis/stream), the rule stays quiet.
        source = """
        def helper():
            return {1.5, 2.5}

        def total():
            return sum(helper())
        """
        assert (
            rules_hit(source, path="/x/repro/feeds/snippet.py") == set()
        )
        assert "REP011" in rules_hit(
            source, path="/x/repro/analysis/snippet.py"
        )


# ----------------------------------------------------------------------
# REP012: store-schema discipline
# ----------------------------------------------------------------------

STORE_HEADER = """
STORE_VERSION = 1
STORE_SCHEMA_COLUMNS = {{"meta": ("key", "value")}}
STORE_SCHEMA_PIN = "{pin}"
"""


def store_fixture(sql="", pin=None):
    from repro.devtools.rules import compute_schema_pin

    if pin is None:
        pin = compute_schema_pin(1, {"meta": ("key", "value")})
    return STORE_HEADER.format(pin=pin) + sql


class TestRep012StoreSchema:
    def test_fresh_pin_and_matching_sql_is_clean(self):
        source = store_fixture(
            '_SCHEMA = """\n'
            "CREATE TABLE IF NOT EXISTS meta(\n"
            "    key TEXT PRIMARY KEY,\n"
            "    value TEXT NOT NULL\n"
            ');\n"""\n'
            '_Q = "SELECT key, value FROM meta"\n'
        )
        assert rules_hit(source) == set()

    def test_stale_pin_is_flagged(self):
        findings = findings_for(store_fixture(pin="v1:000000000000"))
        assert [f.rule for f in findings] == ["REP012"]
        assert "bump" in findings[0].message

    def test_create_table_column_drift(self):
        source = store_fixture(
            '_SCHEMA = "CREATE TABLE meta(key TEXT, val TEXT)"\n'
        )
        findings = findings_for(source)
        assert [f.rule for f in findings] == ["REP012"]
        assert "CREATE TABLE meta" in findings[0].message

    def test_insert_into_unknown_column(self):
        source = store_fixture(
            '_Q = "INSERT INTO meta(key, extra) VALUES(?, ?)"\n'
        )
        assert any(
            "extra" in f.message for f in findings_for(source)
        )

    def test_select_from_undeclared_table(self):
        source = store_fixture('_Q = "SELECT key FROM metadata"\n')
        assert any(
            "undeclared table metadata" in f.message
            for f in findings_for(source)
        )

    def test_aggregates_and_placeholders_are_ignored(self):
        source = store_fixture(
            '_Q = "SELECT COUNT(*) FROM meta WHERE key = ?"\n'
        )
        assert rules_hit(source) == set()

    def test_real_store_pin_is_fresh(self):
        from repro.devtools.rules import compute_schema_pin

        assert STORE_SCHEMA_PIN == compute_schema_pin(
            STORE_VERSION, STORE_SCHEMA_COLUMNS
        )


# ----------------------------------------------------------------------
# Graph construction: aliases, re-exports, cycles
# ----------------------------------------------------------------------


def summarize_tree(tmp_path, files):
    summaries = []
    for relative, source in sorted(files.items()):
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        summaries.append(summarize_path(str(path), path.read_text()))
    return summaries


class TestGraphConstruction:
    def test_aliased_import_resolves(self, tmp_path):
        files = {
            "repro/util.py": """
            def helper():
                return 1
            """,
            "repro/caller.py": """
            from repro.util import helper as h

            def outer():
                return h()
            """,
        }
        graph = ProjectGraph(summarize_tree(tmp_path, files))
        origin = graph.reachable_from(
            [("repro.caller", "outer")]
        )
        assert ("repro.util", "helper") in origin

    def test_reexport_through_package_init(self, tmp_path):
        files = {
            "repro/pkg/__init__.py": """
            from repro.pkg.impl import helper
            """,
            "repro/pkg/impl.py": """
            def helper():
                return 1
            """,
            "repro/caller.py": """
            from repro.pkg import helper

            def outer():
                return helper()
            """,
        }
        graph = ProjectGraph(summarize_tree(tmp_path, files))
        origin = graph.reachable_from([("repro.caller", "outer")])
        assert ("repro.pkg.impl", "helper") in origin

    def test_import_cycle_terminates(self, tmp_path):
        files = {
            "repro/a.py": """
            from repro.b import g

            def f():
                return g()
            """,
            "repro/b.py": """
            from repro.a import f

            def g():
                return f()
            """,
        }
        graph = ProjectGraph(summarize_tree(tmp_path, files))
        origin = graph.reachable_from([("repro.a", "f")])
        assert ("repro.b", "g") in origin
        assert ("repro.a", "f") in origin

    def test_recursive_returns_unordered_fixpoint_terminates(self):
        source = textwrap.dedent(
            """
            def ping():
                return pong()

            def pong():
                return ping()
            """
        )
        summary = summarize_source("/fixtures/rec.py", source, None)
        graph = ProjectGraph([summary])
        assert graph.returns_unordered(("rec", "ping")) is False

    def test_module_name_mapping(self):
        assert (
            module_name_for("/x/src/repro/feeds/suite.py", "feeds/suite.py")
            == "repro.feeds.suite"
        )
        assert (
            module_name_for("/x/src/repro/feeds/__init__.py", "feeds/__init__.py")
            == "repro.feeds"
        )
        assert module_name_for("/tmp/fix.py", None) == "fix"


# ----------------------------------------------------------------------
# Engine: cache identity, parallel identity
# ----------------------------------------------------------------------


def write_fixture_tree(tmp_path):
    tmp_path.mkdir(parents=True, exist_ok=True)
    (tmp_path / "clean.py").write_text("value = 1\n")
    (tmp_path / "bad.py").write_text(
        FANOUT_IMPORT
        + "STATE = {}\n"
        "def work():\n"
        '    STATE["k"] = 1\n'
        "    return 1\n"
        "def run_all():\n"
        "    return ordered_fanout([work], jobs=2)\n"
    )


class TestEngineIdentity:
    def test_warm_equals_cold_byte_for_byte(self, tmp_path):
        write_fixture_tree(tmp_path / "tree")
        cache = ArtifactCache(str(tmp_path / "cache"))
        cold = lint_paths([str(tmp_path / "tree")], cache=cache)
        warm = lint_paths([str(tmp_path / "tree")], cache=cache)
        assert cold == warm
        assert [f.rule for f in cold] == ["REP009"]

    def test_parallel_equals_serial(self, tmp_path):
        write_fixture_tree(tmp_path / "tree")
        serial = lint_paths([str(tmp_path / "tree")])
        parallel = lint_paths([str(tmp_path / "tree")], jobs=4)
        assert serial == parallel

    def test_editing_one_file_invalidates_only_it(self, tmp_path):
        write_fixture_tree(tmp_path / "tree")
        cache = ArtifactCache(str(tmp_path / "cache"))
        lint_paths([str(tmp_path / "tree")], cache=cache)
        (tmp_path / "tree" / "clean.py").write_text("value = 2\n")
        # Warm run after the edit: bad.py loads from cache, clean.py
        # re-summarizes; findings unchanged.
        findings = lint_paths([str(tmp_path / "tree")], cache=cache)
        assert [f.rule for f in findings] == ["REP009"]

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        write_fixture_tree(tmp_path / "tree")
        cache = ArtifactCache(str(tmp_path / "cache"))
        cold = lint_paths([str(tmp_path / "tree")], cache=cache)
        for dirpath, _dirnames, filenames in os.walk(str(tmp_path / "cache")):
            for name in filenames:
                with open(os.path.join(dirpath, name), "wb") as handle:
                    handle.write(b"garbage")
        assert lint_paths([str(tmp_path / "tree")], cache=cache) == cold

    def test_engine_fingerprint_covers_devtools_sources(self):
        pin = engine_fingerprint()
        assert pin == engine_fingerprint()
        assert len(pin) == 64
        assert SUMMARY_KIND == "reprolint-file-summary"


# ----------------------------------------------------------------------
# SARIF output
# ----------------------------------------------------------------------


class TestSarif:
    def test_document_shape_and_determinism(self, tmp_path):
        write_fixture_tree(tmp_path / "tree")
        findings = lint_paths([str(tmp_path / "tree")])
        first = render_sarif(findings, base_dir=str(tmp_path))
        second = render_sarif(findings, base_dir=str(tmp_path))
        assert first == second
        document = json.loads(first)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == sorted(
            r["id"] for r in rules
        )
        assert {r["id"] for r in rules} >= {"REP009", "REP012"}
        result = run["results"][0]
        assert result["ruleId"] == "REP009"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "tree/bad.py"
        assert location["region"]["startLine"] == 4

    def test_empty_findings_keep_full_rule_table(self):
        document = json.loads(render_sarif([]))
        run = document["runs"][0]
        assert run["results"] == []
        assert len(run["tool"]["driver"]["rules"]) == 12


# ----------------------------------------------------------------------
# CLI: exit codes, --sarif, --jobs stability
# ----------------------------------------------------------------------


def run_cli(*argv, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
    )


class TestCliContract:
    def test_exit_zero_on_clean(self, tmp_path):
        (tmp_path / "ok.py").write_text("value = 1\n")
        result = run_cli(str(tmp_path), "--no-cache")
        assert result.returncode == 0

    def test_exit_one_on_findings(self, tmp_path):
        write_fixture_tree(tmp_path)
        result = run_cli(str(tmp_path), "--no-cache")
        assert result.returncode == 1

    def test_exit_two_on_unknown_rule(self, tmp_path):
        result = run_cli(str(tmp_path), "--disable", "REP999")
        assert result.returncode == 2

    def test_exit_two_on_unparsable_input(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        result = run_cli(str(tmp_path), "--no-cache")
        assert result.returncode == 2
        assert "cannot parse" in result.stderr

    def test_exit_two_on_unwritable_sarif(self, tmp_path):
        (tmp_path / "ok.py").write_text("value = 1\n")
        result = run_cli(
            str(tmp_path),
            "--no-cache",
            "--sarif",
            str(tmp_path / "missing-dir" / "out.sarif"),
        )
        assert result.returncode == 2

    def test_sarif_flag_writes_document(self, tmp_path):
        write_fixture_tree(tmp_path / "tree")
        sarif_path = tmp_path / "out.sarif"
        result = run_cli(
            str(tmp_path / "tree"),
            "--no-cache",
            "--sarif",
            str(sarif_path),
        )
        assert result.returncode == 1
        document = json.loads(sarif_path.read_text())
        assert document["runs"][0]["results"]

    def test_jobs_output_is_byte_stable(self, tmp_path):
        write_fixture_tree(tmp_path / "tree")
        serial = run_cli(str(tmp_path / "tree"), "--no-cache")
        parallel = run_cli(
            str(tmp_path / "tree"), "--no-cache", "--jobs", "4"
        )
        assert serial.stdout == parallel.stdout
        assert serial.returncode == parallel.returncode == 1

    def test_warm_cli_equals_cold_cli(self, tmp_path):
        write_fixture_tree(tmp_path / "tree")
        cache_dir = str(tmp_path / "cache")
        cold = run_cli(
            str(tmp_path / "tree"), "--cache-dir", cache_dir
        )
        warm = run_cli(
            str(tmp_path / "tree"), "--cache-dir", cache_dir
        )
        assert cold.stdout == warm.stdout
        assert cold.returncode == warm.returncode == 1

    def test_store_schema_pin_flag(self):
        result = run_cli("--store-schema-pin")
        assert result.returncode == 0
        assert result.stdout.strip() == STORE_SCHEMA_PIN


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
