"""Tracing is a pure side channel: traced runs are byte-identical.

The observability contract of :mod:`repro.obs`: activating a tracer
changes *nothing* about the analysis — every rendered table and figure
must match the untraced run byte for byte, at any worker count, for
the batch and the streaming paths alike.  The manifest is the only
place the run's wall-clock story is allowed to live.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.ecosystem import paper_config, small_config
from repro.io.artifacts import ArtifactCache, fingerprint
from repro.obs.manifest import build_manifest, manifest_stage_names
from repro.parallel import fork_available
from repro.pipeline import PaperPipeline
from repro.stream import build_stream_engine

EQUIVALENCE_SEEDS = (7, 11)

#: Stages a traced small run must cover (the acceptance floor is six
#: distinct stages; these are the load-bearing ones by name).
EXPECTED_STAGES = {
    "pipeline.run",
    "world.build",
    "feeds.collect",
    "comparison.assemble",
    "render.all",
    "parallel.fanout",
}


def traced_small_run(seed, jobs=None, cache=None):
    tracer = obs.Tracer()
    with obs.activate(tracer):
        pipeline = PaperPipeline(
            small_config(), seed=seed, jobs=jobs, cache=cache
        )
        pipeline.run()
        rendered = pipeline.render_all()
    return rendered, tracer


class TestBatchEquivalence:
    @pytest.mark.parametrize("seed", EQUIVALENCE_SEEDS)
    def test_traced_matches_untraced(self, seed):
        untraced = PaperPipeline(small_config(), seed=seed)
        untraced.run()
        baseline = untraced.render_all()

        rendered, tracer = traced_small_run(seed)
        assert rendered == baseline
        assert EXPECTED_STAGES <= set(tracer.stage_names())

    @pytest.mark.parametrize("seed", EQUIVALENCE_SEEDS)
    def test_traced_parallel_matches_untraced_serial(self, seed):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        untraced = PaperPipeline(small_config(), seed=seed)
        untraced.run()
        baseline = untraced.render_all()

        rendered, tracer = traced_small_run(seed, jobs=2)
        assert rendered == baseline
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["worker.0.tasks"] > 0
        assert counters["worker.1.tasks"] > 0

    @pytest.mark.slow
    def test_traced_paper_run_matches_session_pipeline(self, paper_pipeline):
        baseline = paper_pipeline.render_all()
        tracer = obs.Tracer()
        with obs.activate(tracer):
            traced = PaperPipeline(paper_config(), seed=2012)
            traced.run()
            rendered = traced.render_all()
        assert rendered == baseline
        manifest = build_manifest(
            tracer,
            command="run",
            seed=2012,
            config_fingerprint=fingerprint(paper_config()),
        )
        assert len(manifest_stage_names(manifest)) >= 6


class TestTracedManifestContents:
    def test_manifest_valid_with_cache_and_worker_counters(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"))
        _, cold = traced_small_run(2012, cache=cache)
        _, warm = traced_small_run(2012, cache=cache)

        manifest = build_manifest(
            cold,
            command="run",
            seed=2012,
            config_fingerprint=fingerprint(small_config()),
        )
        stages = manifest_stage_names(manifest)
        assert len(stages) >= 6
        counters = manifest["metrics"]["counters"]
        assert counters["cache.miss"] > 0
        assert counters["cache.store"] > 0
        assert counters["cache.hit"] == 0
        assert counters["worker.0.tasks"] > 0
        assert counters["feeds.records"] > 0

        warm_counters = warm.metrics.snapshot()["counters"]
        assert warm_counters["cache.hit"] > 0
        assert warm_counters["cache.miss"] == 0

    def test_cached_run_output_identical(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"))
        cold_rendered, _ = traced_small_run(2012, cache=cache)
        warm_rendered, _ = traced_small_run(2012, cache=cache)
        untraced = PaperPipeline(small_config(), seed=2012)
        untraced.run()
        assert cold_rendered == untraced.render_all()
        assert warm_rendered == cold_rendered


class TestStreamEquivalence:
    @pytest.mark.parametrize("seed", EQUIVALENCE_SEEDS)
    def test_traced_stream_matches_untraced(self, seed):
        config = small_config()
        untraced = build_stream_engine(config, seed=seed)
        untraced.run()
        baseline = untraced.snapshot().render_tables()

        tracer = obs.Tracer()
        with obs.activate(tracer):
            traced = build_stream_engine(config, seed=seed)
            traced.run()
            rendered = traced.snapshot().render_tables()
        assert rendered == baseline
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["stream.records"] == traced.records_processed
        assert counters["stream.batches"] > 0
        assert "stream.drain" in tracer.stage_names()
