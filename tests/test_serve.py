"""Tests for the serve daemon: coalescing, byte-identity, lifecycle.

Three contracts from the issue, each pinned here:

* **Single-flight**: N identical concurrent cold requests cause
  exactly one world build (asserted via the daemon's own counters).
* **Byte-identity**: the bytes ``GET /v1/tables`` serves equal the
  bytes ``python -m repro run`` prints for the same config and seed.
* **Graceful shutdown**: a drain initiated mid-request still delivers
  the in-flight response, and a SIGTERM'd daemon process exits 0 with
  no surviving children.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.__main__ import main
from repro.serve import (
    ServeApp,
    ServeDaemon,
    ServeStats,
    SingleFlight,
    WorldCache,
)

SMALL_SEED = 7


# ----------------------------------------------------------------------
# The single-flight primitive
# ----------------------------------------------------------------------


class TestSingleFlight:
    def test_concurrent_callers_share_one_execution(self):
        flights = SingleFlight()
        calls = []
        release = threading.Event()

        def slow():
            calls.append(1)
            release.wait(timeout=10)
            return "answer"

        results = []

        def worker():
            results.append(flights.do("k", slow))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        # Wait until the leader is inside slow(), then release it.
        deadline = time.monotonic() + 10
        while not calls and time.monotonic() < deadline:
            time.sleep(0.01)
        release.set()
        for thread in threads:
            thread.join(timeout=10)
        assert len(calls) == 1
        assert len(results) == 8
        assert {value for value, _ in results} == {"answer"}
        assert sum(1 for _, leader in results if leader) == 1

    def test_key_forgotten_after_completion(self):
        flights = SingleFlight()
        flights.do("k", lambda: 1)
        value, leader = flights.do("k", lambda: 2)
        # Not a cache: the second sequential call recomputes.
        assert value == 2 and leader
        assert flights.in_flight() == 0

    def test_leader_error_propagates_to_waiters(self):
        flights = SingleFlight()
        release = threading.Event()
        outcomes = []

        def boom():
            release.wait(timeout=10)
            raise RuntimeError("build failed")

        def worker():
            try:
                flights.do("k", boom)
            except RuntimeError as exc:
                outcomes.append(str(exc))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        release.set()
        for thread in threads:
            thread.join(timeout=10)
        assert outcomes == ["build failed"] * 4
        # A failed flight is forgotten too: the next call retries.
        value, _ = flights.do("k", lambda: "recovered")
        assert value == "recovered"

    def test_distinct_keys_do_not_coalesce(self):
        flights = SingleFlight()
        assert flights.do("a", lambda: 1)[0] == 1
        assert flights.do("b", lambda: 2)[0] == 2


# ----------------------------------------------------------------------
# In-process daemon fixtures
# ----------------------------------------------------------------------


def _make_app(**kwargs) -> ServeApp:
    stats = ServeStats()
    worlds = WorldCache(stats, cache=None, **kwargs)
    return ServeApp(
        worlds, stats, default_seed=SMALL_SEED, default_small=True
    )


@pytest.fixture(scope="module")
def daemon():
    served = ServeDaemon(_make_app(), port=0)
    served.start()
    yield served
    served.drain()


def _get(daemon, path):
    try:
        with urllib.request.urlopen(
            daemon.address + path, timeout=120
        ) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


# ----------------------------------------------------------------------
# Coalescing through the full daemon
# ----------------------------------------------------------------------


class TestCoalescing:
    def test_concurrent_identical_requests_build_once(self, daemon):
        n = 6
        results = [None] * n

        def hit(index):
            results[index] = _get(daemon, "/v1/tables")

        threads = [
            threading.Thread(target=hit, args=(index,)) for index in range(n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert all(status == 200 for status, _ in results)
        assert len({body for _, body in results}) == 1

        status, body = _get(daemon, "/v1/stats")
        assert status == 200
        counters = json.loads(body)["metrics"]["counters"]
        # The issue's acceptance criterion: N identical concurrent
        # requests -> exactly one world build, visible in the counters.
        assert counters["serve.worlds_built"] == 1
        coalesced = counters.get("serve.coalesced_builds", 0)
        hits = counters.get("serve.world_hits", 0)
        assert coalesced + hits == n - 1
        # Rendering coalesced the same way: one render, n-1 shared.
        assert counters.get("serve.renders_built", 0) == 1

    def test_warm_requests_are_lru_hits(self, daemon):
        before = json.loads(_get(daemon, "/v1/stats")[1])
        built_before = before["metrics"]["counters"]["serve.worlds_built"]
        status, _ = _get(daemon, "/v1/table/2")
        assert status == 200
        after = json.loads(_get(daemon, "/v1/stats")[1])
        assert (
            after["metrics"]["counters"]["serve.worlds_built"]
            == built_before
        )

    def test_snapshot_endpoint_reuses_the_stream_engine(self, daemon):
        status, day3 = _get(daemon, "/v1/snapshot?day=3")
        assert status == 200
        assert day3.startswith(b"[stream] as of day 3:")
        status, day5 = _get(daemon, "/v1/snapshot?day=5")
        assert status == 200
        # Rewind: earlier day after a later one replays, same bytes.
        status, day3_again = _get(daemon, "/v1/snapshot?day=3")
        assert status == 200
        assert day3_again == day3
        counters = json.loads(_get(daemon, "/v1/stats")[1])["metrics"][
            "counters"
        ]
        assert counters["serve.snapshots_built"] == 2
        assert counters["serve.snapshot_hits"] >= 1

    def test_bad_requests_are_400_not_500(self, daemon):
        assert _get(daemon, "/v1/tables?seed=x")[0] == 400
        assert _get(daemon, "/v1/snapshot")[0] == 400
        assert _get(daemon, "/v1/snapshot?day=100000")[0] == 400
        assert _get(daemon, "/v1/recommend?question=nope")[0] == 400
        assert _get(daemon, "/v1/first-seen?domain=x.com")[0] == 400
        status, body = _get(daemon, "/v1/does-not-exist")
        assert status == 404
        assert "/v1/tables" in json.loads(body)["endpoints"]

    def test_recommend_matches_batch_ranking(self, daemon):
        status, body = _get(daemon, "/v1/recommend?question=coverage")
        assert status == 200
        payload = json.loads(body)
        assert payload["question"] == "coverage"
        ranks = [entry["rank"] for entry in payload["ranking"]]
        assert ranks == sorted(ranks)
        assert len(payload["ranking"]) >= 5


# ----------------------------------------------------------------------
# Byte-identity against the batch CLI
# ----------------------------------------------------------------------


class TestByteIdentity:
    @pytest.mark.parametrize("seed", [7, 11, 2012])
    def test_served_tables_equal_batch_stdout(
        self, daemon, seed, capsys
    ):
        status, served = _get(daemon, f"/v1/tables?seed={seed}")
        assert status == 200
        code = main(["-q", "--small", "--seed", str(seed), "run"])
        assert code == 0
        batch = capsys.readouterr().out
        assert served.decode("utf-8") == batch

    def test_single_table_matches_full_render(self, daemon):
        status, full = _get(daemon, "/v1/tables")
        status2, table1 = _get(daemon, "/v1/table/1")
        assert status == 200 and status2 == 200
        assert table1.rstrip(b"\n") in full


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------


class TestGracefulShutdown:
    def test_drain_delivers_in_flight_response(self):
        served = ServeDaemon(_make_app(), port=0)
        served.start()
        result = {}

        def slow_request():
            result["response"] = _get(served, "/v1/tables")

        requester = threading.Thread(target=slow_request)
        requester.start()
        # Give the request time to reach the (slow, cold) build, then
        # drain while it is still in flight.
        time.sleep(0.3)
        served.drain()
        requester.join(timeout=300)
        status, body = result["response"]
        assert status == 200
        assert b"Table 1" in body
        # Draining twice is a no-op.
        served.drain()

    def test_drained_daemon_refuses_new_connections(self):
        served = ServeDaemon(_make_app(), port=0)
        served.start()
        port = served.port
        served.drain()
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=1)


# ----------------------------------------------------------------------
# The CLI subcommand end to end (subprocess: real signals, real exit)
# ----------------------------------------------------------------------


def _spawn_serve(*extra: str) -> "subprocess.Popen[str]":
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "--small", "--seed", "7",
         "serve", "--no-cache", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def _alive_non_zombie(pid: str) -> bool:
    """True while ``pid`` exists and has not yet exited.

    A worker that died at parent exit lingers as a zombie until init
    reaps it; only a *running* leftover process is a reaping failure.
    """
    try:
        with open(f"/proc/{pid}/stat") as handle:
            state = handle.read().rsplit(")", 1)[1].split()[0]
    except (OSError, IndexError):
        return False
    return state != "Z"


def _await_no_survivors(pids, timeout: float = 10.0):
    """Poll until every pid is gone (or a zombie); return stragglers."""
    deadline = time.monotonic() + timeout
    survivors = list(pids)
    while survivors and time.monotonic() < deadline:
        survivors = [pid for pid in survivors if _alive_non_zombie(pid)]
        if survivors:
            time.sleep(0.1)
    return survivors


def _await_ready(proc) -> str:
    line = proc.stderr.readline()
    match = re.search(r"listening on (http://[\d.]+:\d+)", line)
    assert match, f"no readiness line, got {line!r}"
    return match.group(1)


class TestServeSubprocess:
    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_signal_exits_zero_with_no_orphans(self, signum):
        proc = _spawn_serve()
        try:
            base = _await_ready(proc)
            with urllib.request.urlopen(
                base + "/healthz", timeout=30
            ) as response:
                assert response.read() == b"ok\n"
            children_path = f"/proc/{proc.pid}/task/{proc.pid}/children"
            proc.send_signal(signum)
            _, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, stderr
        assert not os.path.exists(children_path)

    def test_manifest_per_request(self, tmp_path):
        manifest_dir = tmp_path / "manifests"
        proc = _spawn_serve("--manifest-dir", str(manifest_dir))
        try:
            base = _await_ready(proc)
            with urllib.request.urlopen(
                base + "/healthz", timeout=30
            ) as response:
                assert response.status == 200
            proc.send_signal(signal.SIGTERM)
            proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        manifests = sorted(manifest_dir.glob("request-*.json"))
        assert manifests
        payload = json.loads(manifests[0].read_text())
        assert payload["format"] == "repro-run-manifest"
        assert payload["command"] == "serve"
        assert payload["request"].endswith("GET /healthz -> 200")


class TestRunInterrupt:
    def test_sigint_mid_parallel_run_reaps_workers(self):
        """Ctrl-C during a --jobs run: exit 130, no surviving children."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "--seed", "7", "run",
             "--jobs", "2", "--no-cache"],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        children = []
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                try:
                    with open(
                        f"/proc/{proc.pid}/task/{proc.pid}/children"
                    ) as handle:
                        children = handle.read().split()
                except OSError:
                    break
                if children or proc.poll() is not None:
                    break
                time.sleep(0.02)
            assert children, "pool never forked (fork unavailable?)"
            proc.send_signal(signal.SIGINT)
            _, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, stderr
        assert "interrupted" in stderr
        assert _await_no_survivors(children) == []
