"""Unit and property tests for variation distance."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.stats.distributions import EmpiricalDistribution
from repro.stats.metrics import (
    normalized_counts,
    overlap_coefficient,
    variation_distance,
)


def dist(**counts):
    return EmpiricalDistribution(counts)


class TestVariationDistance:
    def test_identical_distributions(self):
        p = dist(a=2, b=2)
        assert variation_distance(p, p) == 0.0

    def test_proportional_counts_are_identical(self):
        assert variation_distance(dist(a=1, b=3), dist(a=10, b=30)) == 0.0

    def test_disjoint_supports(self):
        assert variation_distance(dist(a=1), dist(b=1)) == 1.0

    def test_half_overlap(self):
        # p = (3/4, 1/4), q = (1/4, 3/4) -> delta = 1/2.
        assert math.isclose(
            variation_distance(dist(a=3, b=1), dist(a=1, b=3)), 0.5
        )

    def test_both_empty(self):
        assert variation_distance(dist(), dist()) == 0.0

    def test_one_empty(self):
        assert variation_distance(dist(a=1), dist()) == 1.0

    def test_support_restriction(self):
        p = dist(a=1, b=1, z=98)
        q = dist(a=1, b=1)
        # Restricted to {a, b}, the distributions agree exactly.
        assert variation_distance(p, q, support={"a", "b"}) == 0.0
        assert variation_distance(p, q) > 0.9

    def test_symmetry(self):
        p, q = dist(a=5, b=1), dist(a=1, c=4)
        assert variation_distance(p, q) == variation_distance(q, p)

    @given(
        st.dictionaries(st.integers(0, 20), st.floats(0.01, 100), max_size=15),
        st.dictionaries(st.integers(0, 20), st.floats(0.01, 100), max_size=15),
    )
    def test_property_metric_range_and_symmetry(self, c1, c2):
        p, q = EmpiricalDistribution(c1), EmpiricalDistribution(c2)
        d = variation_distance(p, q)
        assert 0.0 <= d <= 1.0
        assert math.isclose(d, variation_distance(q, p), abs_tol=1e-12)

    @given(
        st.dictionaries(
            st.integers(0, 10), st.floats(0.01, 100), min_size=1, max_size=10
        )
    )
    def test_property_self_distance_zero(self, counts):
        p = EmpiricalDistribution(counts)
        assert variation_distance(p, p) == 0.0

    @given(
        st.dictionaries(st.integers(0, 8), st.floats(0.01, 9), max_size=8),
        st.dictionaries(st.integers(0, 8), st.floats(0.01, 9), max_size=8),
        st.dictionaries(st.integers(0, 8), st.floats(0.01, 9), max_size=8),
    )
    def test_property_triangle_inequality(self, c1, c2, c3):
        p = EmpiricalDistribution(c1)
        q = EmpiricalDistribution(c2)
        r = EmpiricalDistribution(c3)
        assert variation_distance(p, r) <= (
            variation_distance(p, q) + variation_distance(q, r) + 1e-9
        )


class TestOverlapCoefficient:
    def test_complement_of_distance(self):
        p, q = dist(a=3, b=1), dist(a=1, b=3)
        assert math.isclose(
            overlap_coefficient(p, q), 1.0 - variation_distance(p, q)
        )


class TestNormalizedCounts:
    def test_wraps_mapping(self):
        d = normalized_counts({"x": 2, "y": 2})
        assert d.probability("x") == 0.5
