"""Unit tests for the four measurement oracles, over the toy world."""

import pytest

from repro.oracles import (
    AlexaList,
    CrawlOracle,
    IncomingMailOracle,
    OdpDirectory,
    ZoneOracle,
)
from repro.oracles.weblists import benign_listed
from repro.simtime import days


class TestZoneOracle:
    def test_registered_spam_domain(self, toy_world):
        oracle = ZoneOracle.from_world(toy_world)
        assert oracle.in_zone("loudpills.com") is True

    def test_unregistered_domain(self, toy_world):
        oracle = ZoneOracle.from_world(toy_world)
        assert oracle.in_zone("neverseen.com") is False

    def test_uncovered_tld_returns_none(self, toy_world):
        oracle = ZoneOracle.from_world(toy_world)
        assert oracle.in_zone("spam.ru") is None

    def test_covers(self, toy_world):
        oracle = ZoneOracle.from_world(toy_world)
        assert oracle.covers("x.com")
        assert not oracle.covers("x.co.uk")

    def test_registration_report(self, toy_world):
        oracle = ZoneOracle.from_world(toy_world)
        report = oracle.registration_report(
            ["loudpills.com", "neverseen.com", "spam.ru"]
        )
        assert report == {"covered": 2, "registered": 1, "uncovered": 1}

    def test_registered_fraction(self, toy_world):
        oracle = ZoneOracle.from_world(toy_world)
        assert oracle.registered_fraction(
            ["loudpills.com", "neverseen.com"]
        ) == 0.5
        assert oracle.registered_fraction([]) == 0.0

    def test_registered_subset(self, toy_world):
        oracle = ZoneOracle.from_world(toy_world)
        subset = oracle.registered_subset(
            ["loudpills.com", "neverseen.com", "quietwatch.biz"]
        )
        assert subset == {"loudpills.com", "quietwatch.biz"}

    def test_bracket_excludes_distant_registrations(self, toy_world):
        # A domain dropped long before the bracket must not count.
        toy_world.registry.register("ancient.com", -days(3000), -days(2500))
        oracle = ZoneOracle.from_world(toy_world)
        assert oracle.in_zone("ancient.com") is False


class TestWebLists:
    def test_alexa_membership_and_rank(self, toy_world):
        alexa = AlexaList.from_world(toy_world)
        assert "megaportal.com" in alexa
        assert alexa.rank("megaportal.com") == 1
        assert alexa.rank("shortlink.us") == 2
        assert alexa.rank("loudpills.com") is None

    def test_alexa_top(self, toy_world):
        alexa = AlexaList.from_world(toy_world)
        assert alexa.top(2) == ["megaportal.com", "shortlink.us"]

    def test_alexa_duplicates_rejected(self):
        with pytest.raises(ValueError):
            AlexaList(["a.com", "a.com"])

    def test_odp_membership(self, toy_world):
        odp = OdpDirectory.from_world(toy_world)
        assert "dirlisted.net" in odp
        assert "megaportal.com" not in odp

    def test_intersections(self, toy_world):
        alexa = AlexaList.from_world(toy_world)
        odp = OdpDirectory.from_world(toy_world)
        domains = ["megaportal.com", "dirlisted.net", "loudpills.com"]
        assert alexa.intersection(domains) == {"megaportal.com"}
        assert odp.intersection(domains) == {"dirlisted.net"}
        assert benign_listed(domains, alexa, odp) == {
            "megaportal.com", "dirlisted.net"
        }


class TestCrawlOracle:
    def test_live_storefront_tagged(self, toy_world):
        oracle = CrawlOracle(toy_world)
        result = oracle.crawl("loudpills.com", days(12))
        assert result.http_ok
        assert result.tagged
        assert result.program_id == 0
        assert result.affiliate_id == 0  # program 0 embeds ids

    def test_non_embedding_program_hides_affiliate(self, toy_world):
        oracle = CrawlOracle(toy_world)
        result = oracle.crawl("quietwatch.biz", days(41))
        assert result.tagged
        assert result.program_id == 1
        assert result.affiliate_id is None

    def test_dead_after_takedown(self, toy_world):
        oracle = CrawlOracle(toy_world)
        result = oracle.crawl("loudpills.com", days(80))
        assert not result.http_ok
        assert not result.tagged

    def test_redirector_tagged(self, toy_world):
        oracle = CrawlOracle(toy_world)
        result = oracle.crawl("shortlink.us", days(15))
        assert result.tagged
        assert result.program_id == 0

    def test_benign_live_untagged(self, toy_world):
        oracle = CrawlOracle(toy_world)
        result = oracle.crawl("bignews.org", days(15))
        assert result.http_ok
        assert not result.tagged

    def test_unhosted_dead(self, toy_world):
        oracle = CrawlOracle(toy_world)
        assert not oracle.crawl("qwxkzj.com", days(15)).http_ok

    def test_verdict_cached_per_domain(self, toy_world):
        oracle = CrawlOracle(toy_world)
        first = oracle.crawl("loudpills.com", days(12))
        second = oracle.crawl("loudpills.com", days(80))
        assert first is second

    def test_crawl_at_first_seen(self, toy_world):
        oracle = CrawlOracle(toy_world)
        results = oracle.crawl_at_first_seen(
            {"loudpills.com": days(12), "qwxkzj.com": days(5)}
        )
        assert results["loudpills.com"].tagged
        assert not results["qwxkzj.com"].http_ok
        assert oracle.live_subset(results.values()) == {"loudpills.com"}
        assert oracle.tagged_subset(results.values()) == {"loudpills.com"}

    def test_tagging_requires_liveness(self):
        from repro.oracles.crawler import CrawlResult
        with pytest.raises(ValueError):
            CrawlResult("x.com", http_ok=False, program_id=1)


class TestIncomingMailOracle:
    def make_oracle(self, world, **kwargs):
        kwargs.setdefault("noise_sigma", 0.0)
        return IncomingMailOracle(world, **kwargs)

    def test_inactive_domain_zero_spam_volume(self, toy_world):
        # The toy campaigns end before the oracle window (day 45-50
        # overlaps quietwatch only).
        oracle = self.make_oracle(toy_world)
        assert oracle.message_volume("loudpills.com") == 0.0

    def test_window_active_domain_counted(self, toy_world):
        oracle = self.make_oracle(toy_world)
        # quietwatch.biz: days 40-50, window 45-50 -> half the placement.
        volume = oracle.message_volume("quietwatch.biz")
        expected = 400.0 * 1.0 * 0.5 * 0.35  # vol * reach * overlap * share
        assert abs(volume - expected) < 1e-9

    def test_benign_volume_by_rank(self, toy_world):
        oracle = self.make_oracle(toy_world)
        top = oracle.message_volume("megaportal.com")
        second = oracle.message_volume("shortlink.us")
        assert top > second > 0

    def test_odp_and_newsletter_baselines(self, toy_world):
        oracle = self.make_oracle(toy_world)
        assert oracle.message_volume("dirlisted.net") == 3.0
        assert oracle.message_volume("newsweekly.com") == 25.0

    def test_unknown_domain_zero(self, toy_world):
        oracle = self.make_oracle(toy_world)
        assert oracle.message_volume("neverseen.info") == 0.0

    def test_query_normalized_to_peak(self, toy_world):
        oracle = self.make_oracle(toy_world)
        report = oracle.query(["megaportal.com", "quietwatch.biz"])
        assert report["megaportal.com"] == 1.0
        assert 0.0 < report["quietwatch.biz"] < 1.0

    def test_query_all_zero(self, toy_world):
        oracle = self.make_oracle(toy_world)
        report = oracle.query(["neverseen.info"])
        assert report == {"neverseen.info": 0.0}

    def test_distribution(self, toy_world):
        oracle = self.make_oracle(toy_world)
        dist = oracle.distribution(["megaportal.com", "quietwatch.biz"])
        assert dist.probability("megaportal.com") > dist.probability(
            "quietwatch.biz"
        )


class TestZoneCoverage:
    def test_coverage_fraction(self, toy_world):
        oracle = ZoneOracle.from_world(toy_world)
        assert oracle.coverage_fraction(["a.com", "b.ru"]) == 0.5
        assert oracle.coverage_fraction([]) == 0.0

    def test_paper_range_on_small_world(self, small_comparison):
        # "Together these TLDs covered between 63% and 100% of each
        # feed" (Section 4.1.1).
        oracle = small_comparison.zone
        for feed in small_comparison.feed_names:
            domains = small_comparison.unique_domains(feed)
            if not domains:
                continue
            fraction = oracle.coverage_fraction(domains)
            assert 0.6 <= fraction <= 1.0
