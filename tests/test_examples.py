"""Smoke tests: the example scripts must run end-to-end.

Each example runs as a subprocess on the miniature world; these guard
the public API the examples exercise (a broken example is a broken
quickstart experience even when the library tests pass).
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args, timeout=180):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "--small", "--seed", "7")
        assert result.returncode == 0, result.stderr
        assert "Table 1" in result.stdout
        assert "Headline check" in result.stdout

    def test_feed_evaluation(self):
        result = run_example("feed_evaluation.py", "--small", "--seed", "7")
        assert result.returncode == 0, result.stderr
        assert "Purity of mx-new" in result.stdout
        assert "Variation distance" in result.stdout

    def test_external_feeds(self):
        result = run_example("external_feeds.py", "--seed", "7")
        assert result.returncode == 0, result.stderr
        assert "Round-trip analysis identical" in result.stdout

    def test_choose_your_feeds(self):
        result = run_example(
            "choose_your_feeds.py", "--small", "--seed", "7", "--budget", "2"
        )
        assert result.returncode == 0, result.stderr
        assert "Best feed per research question" in result.stdout
        assert "Diverse portfolio" in result.stdout

    @pytest.mark.slow
    def test_blacklist_latency_study(self):
        result = run_example(
            "blacklist_latency_study.py", "--small", "--seed", "7",
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "latency sweep" in result.stdout
