"""Unit tests for the stream merge layer, accumulators and checkpoints."""

import pytest

from repro.feeds.base import FeedDataset, FeedRecord, FeedType
from repro.io.checkpoint import (
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from repro.stream import (
    FeedAccumulator,
    RecordStream,
    StreamState,
    StreamStateError,
)
from repro.stream.merge import StreamEvent


def _records(*times):
    return [FeedRecord(f"d{t}.com", t) for t in times]


class TestRecordStream:
    def test_time_ordered_interleave(self):
        stream = RecordStream(
            {"a": _records(5, 10, 20), "b": _records(1, 12)}
        )
        times = [event.time for event in stream]
        assert times == sorted(times) == [1, 5, 10, 12, 20]

    def test_tie_broken_by_source_registration_order(self):
        a = [FeedRecord("x.com", 7)]
        b = [FeedRecord("y.com", 7)]
        stream = RecordStream({"b": b, "a": a})
        feeds = [event.feed for event in stream]
        assert feeds == ["b", "a"]

    def test_batch_size_bound(self):
        stream = RecordStream({"a": _records(*range(10))}, batch_size=3)
        batch = stream.next_batch()
        assert len(batch) == 3
        assert stream.emitted == 3
        assert len(stream.next_batch(limit=2)) == 2

    def test_until_time_is_exclusive(self):
        stream = RecordStream({"a": _records(1, 2, 3)})
        batch = stream.next_batch(until_time=3)
        assert [event.time for event in batch] == [1, 2]
        assert not stream.exhausted
        assert stream.peek_time() == 3

    def test_cursors_and_seek_roundtrip(self):
        sources = {"a": _records(1, 4, 9), "b": _records(2, 3)}
        stream = RecordStream(sources)
        stream.next_batch(limit=3)
        saved = stream.cursors
        rest = [event for event in stream]

        fresh = RecordStream(sources)
        fresh.seek(saved)
        assert [event for event in fresh] == rest

    def test_seek_rejects_unknown_feed_and_bad_range(self):
        stream = RecordStream({"a": _records(1)})
        with pytest.raises(ValueError):
            stream.seek({"zz": 0})
        with pytest.raises(ValueError):
            stream.seek({"a": 5})

    def test_unordered_source_rejected(self):
        with pytest.raises(ValueError, match="not time-ordered"):
            RecordStream({"a": [FeedRecord("x.com", 5), FeedRecord("y.com", 1)]})

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError):
            RecordStream({})

    def test_exhaustion(self):
        stream = RecordStream({"a": _records(1)})
        assert not stream.exhausted
        stream.next_batch()
        assert stream.exhausted
        assert stream.next_batch() == []

    def test_chronological_records_sorts_unsorted_dataset(self):
        dataset = FeedDataset(
            "x", FeedType.BOTNET,
            [FeedRecord("b.com", 9), FeedRecord("a.com", 2)],
        )
        ordered = dataset.chronological_records()
        assert [r.time for r in ordered] == [2, 9]
        # The raw record list is untouched.
        assert [r.time for r in dataset.records] == [9, 2]


class TestStreamState:
    def _state(self):
        return StreamState(
            [
                ("a", FeedType.MX_HONEYPOT, True),
                ("b", FeedType.BLACKLIST, False),
            ]
        )

    def test_accumulator_matches_dataset_statistics(self):
        records = [
            FeedRecord("x.com", 5),
            FeedRecord("y.com", 2),
            FeedRecord("x.com", 9),
            FeedRecord("x.com", 1),
        ]
        dataset = FeedDataset("a", FeedType.MX_HONEYPOT, sorted(
            records, key=lambda r: r.time
        ))
        acc = FeedAccumulator("a", FeedType.MX_HONEYPOT)
        for record in dataset.records:
            acc.add(record.domain, record.time)
        assert acc.total_samples == dataset.total_samples
        assert acc.unique_domains() == dataset.unique_domains()
        assert acc.first_seen() == dataset.first_seen()
        assert acc.last_seen() == dataset.last_seen()
        assert (
            dict(acc.domain_counts().items())
            == dict(dataset.domain_counts().items())
        )

    def test_exclusive_tracking(self):
        state = self._state()
        state.update(StreamEvent(1, "a", "only-a.com"))
        state.update(StreamEvent(2, "b", "shared.com"))
        assert state.exclusive_count("a") == 1
        assert state.exclusive_count("b") == 1
        state.update(StreamEvent(3, "a", "shared.com"))
        assert state.exclusive_count("a") == 1
        assert state.exclusive_count("b") == 0
        assert state.union_size == 2
        assert state.pairwise_intersection("a", "b") == 1

    def test_repeat_sightings_do_not_change_cross_feed_counters(self):
        state = self._state()
        for t in (1, 2, 3):
            state.update(StreamEvent(t, "a", "x.com"))
        assert state.union_size == 1
        assert state.exclusive_count("a") == 1
        assert state.accumulators["a"].total_samples == 3

    def test_unknown_feed_rejected(self):
        state = self._state()
        with pytest.raises(StreamStateError):
            state.update(StreamEvent(1, "nope", "x.com"))

    def test_payload_roundtrip_preserves_everything(self):
        state = self._state()
        events = [
            StreamEvent(1, "a", "x.com"),
            StreamEvent(2, "b", "x.com"),
            StreamEvent(3, "a", "y.com"),
            StreamEvent(3, "a", "x.com"),
        ]
        state.update_batch(events)
        clone = StreamState.from_payload(state.to_payload())
        assert clone.records_processed == state.records_processed
        assert clone.clock == state.clock
        assert clone.union_size == state.union_size
        for feed in ("a", "b"):
            assert clone.exclusive_count(feed) == state.exclusive_count(feed)
            a, c = state.accumulators[feed], clone.accumulators[feed]
            assert a.total_samples == c.total_samples
            assert a.unique_domains() == c.unique_domains()
            assert a.first_seen() == c.first_seen()
            assert a.last_seen() == c.last_seen()
        assert clone.pairwise_intersection("a", "b") == 1

    def test_bad_payload_rejected(self):
        with pytest.raises(StreamStateError):
            StreamState.from_payload({"feeds": [{"name": "a"}]})


class TestCheckpointIo:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, "stream-engine", {"x": [1, 2]})
        assert read_checkpoint(path, "stream-engine") == {"x": [1, 2]}

    def test_kind_mismatch(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, "something-else", {})
        with pytest.raises(CheckpointError, match="kind"):
            read_checkpoint(path, "stream-engine")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json at all{{{")
        with pytest.raises(CheckpointError):
            read_checkpoint(str(path), "stream-engine")

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(
            '{"format": "repro-checkpoint", "version": 999, '
            '"kind": "stream-engine", "payload": {}}'
        )
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(str(path), "stream-engine")

    def test_no_partial_file_on_success(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, "stream-engine", {"n": 1})
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ck.json"]
