"""The source tree must stay reprolint-clean.

This is the guard the tentpole exists for: any new order-sensitive
accumulation, hidden-global RNG use, wall-clock read, or unpinned
checkpoint schema change fails this test (and ``python -m repro lint
--strict`` in CI) at the file:line that introduced it.
"""

from __future__ import annotations

import os

import repro
from repro.devtools import lint_paths, render_text

PACKAGE_DIR = os.path.dirname(os.path.abspath(repro.__file__))


def test_source_tree_has_zero_findings():
    findings = lint_paths([PACKAGE_DIR])
    assert findings == [], "\n" + render_text(findings)


def test_schema_pin_is_fresh():
    """The pinned checkpoint schema matches the declared fields."""
    from repro.devtools.rules import compute_schema_pin
    from repro.io import checkpoint

    assert checkpoint.CHECKPOINT_SCHEMA_PIN == compute_schema_pin(
        checkpoint.CHECKPOINT_VERSION, checkpoint.CHECKPOINT_SCHEMAS
    )
