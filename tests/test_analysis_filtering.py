"""Unit tests for the filter-evaluation analysis (toy world)."""

import pytest

from repro.analysis import FeedComparison
from repro.analysis.filtering import (
    evaluate_all_filters,
    evaluate_filter,
    registered_domain_hazard,
)
from repro.feeds.base import FeedDataset, FeedRecord, FeedType
from repro.simtime import days

from tests.test_analysis_context import make_feeds


@pytest.fixture()
def comparison(toy_world):
    return FeedComparison(toy_world, make_feeds(), seed=0)


class TestEvaluateFilter:
    def test_hu_precision(self, comparison):
        report = evaluate_filter(comparison, "Hu")
        # Hu lists 4 domains: 2 spam, 1 benign (megaportal), 1 junk.
        assert report.listed == 4
        assert report.true_positives == 2
        assert report.benign_positives == 1
        assert report.unknown_positives == 1
        assert report.precision == 0.5

    def test_domain_recall(self, comparison):
        report = evaluate_filter(comparison, "Hu")
        # Ground truth spam domains: loudpills, loudpills2, quietwatch
        # (the abused redirector is benign by definition here).
        assert report.domain_recall == pytest.approx(2 / 3)

    def test_volume_recall(self, comparison):
        report = evaluate_filter(comparison, "Hu")
        # Hu lists loudpills (50k) + quietwatch (400) of 110,400 total.
        assert report.volume_recall == pytest.approx(50_400 / 110_400)

    def test_timely_recall_lower_than_total(self, comparison):
        # Hu saw loudpills on day 11, one day into its day-10..20 run:
        # only the remaining 90% of its volume was blockable.
        report = evaluate_filter(comparison, "Hu")
        assert report.timely_volume_recall < report.volume_recall
        expected = (50_000 * 0.9 + 400) / 110_400
        assert report.timely_volume_recall == pytest.approx(expected, rel=0.01)

    def test_collateral_counts_benign_mail(self, comparison):
        report = evaluate_filter(comparison, "Hu")
        # Hu wrongly lists megaportal.com (Alexa rank 1).
        assert report.collateral_fraction > 0.3

    def test_pure_feed_zero_collateral(self, comparison):
        report = evaluate_filter(comparison, "dbl")
        assert report.benign_positives == 0
        assert report.collateral_fraction == 0.0
        assert report.precision == 1.0

    def test_empty_feed(self, toy_world):
        feeds = make_feeds()
        feeds["empty"] = FeedDataset("empty", FeedType.MX_HONEYPOT, [])
        comparison = FeedComparison(toy_world, feeds)
        report = evaluate_filter(comparison, "empty")
        assert report.listed == 0
        assert report.precision == 0.0
        assert report.volume_recall == 0.0

    def test_evaluate_all(self, comparison):
        reports = evaluate_all_filters(comparison)
        assert set(reports) == {"Hu", "mx1", "dbl"}


class TestRegisteredDomainHazard:
    def test_redirector_flagged(self, comparison):
        # mx1 carries the abused shortener: blocking it at registered-
        # domain granularity would take the whole service down.
        assert registered_domain_hazard(comparison, "mx1") == {
            "shortlink.us"
        }
        assert registered_domain_hazard(comparison, "Hu") == set()


class TestLateListing:
    def test_listing_after_campaign_blocks_nothing(self, toy_world):
        feeds = make_feeds()
        feeds["late"] = FeedDataset(
            "late",
            FeedType.BLACKLIST,
            [FeedRecord("loudpills.com", days(60))],  # campaign ended day 20
            has_volume=False,
        )
        comparison = FeedComparison(toy_world, feeds)
        report = evaluate_filter(comparison, "late")
        assert report.volume_recall > 0.0       # the domain is listed...
        assert report.timely_volume_recall == 0.0   # ...but too late
