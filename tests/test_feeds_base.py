"""Unit tests for the feed data model."""

import pytest

from repro.feeds.base import FeedDataset, FeedRecord, FeedType


def make_dataset(records, name="test", feed_type=FeedType.MX_HONEYPOT,
                 has_volume=True):
    return FeedDataset(name, feed_type, records, has_volume)


SAMPLE = [
    FeedRecord("a.com", 10),
    FeedRecord("b.com", 5),
    FeedRecord("a.com", 30),
    FeedRecord("c.com", 20),
    FeedRecord("a.com", 20),
]


class TestBasics:
    def test_total_samples(self):
        assert make_dataset(SAMPLE).total_samples == 5

    def test_unique_domains(self):
        ds = make_dataset(SAMPLE)
        assert ds.unique_domains() == {"a.com", "b.com", "c.com"}
        assert ds.n_unique == 3

    def test_len(self):
        assert len(make_dataset(SAMPLE)) == 5

    def test_repr_mentions_name_and_counts(self):
        text = repr(make_dataset(SAMPLE, name="mx9"))
        assert "mx9" in text
        assert "samples=5" in text

    def test_empty_dataset(self):
        ds = make_dataset([])
        assert ds.total_samples == 0
        assert ds.n_unique == 0
        assert ds.first_seen() == {}


class TestVolumeView:
    def test_domain_counts(self):
        counts = make_dataset(SAMPLE).domain_counts()
        assert counts.count("a.com") == 3
        assert counts.count("b.com") == 1
        assert counts.probability("a.com") == 0.6

    def test_counts_cached(self):
        ds = make_dataset(SAMPLE)
        assert ds.domain_counts() is ds.domain_counts()


class TestTimingView:
    def test_first_seen(self):
        first = make_dataset(SAMPLE).first_seen()
        assert first["a.com"] == 10
        assert first["b.com"] == 5

    def test_last_seen(self):
        last = make_dataset(SAMPLE).last_seen()
        assert last["a.com"] == 30
        assert last["c.com"] == 20


class TestRestrict:
    def test_restrict_filters_records(self):
        ds = make_dataset(SAMPLE).restrict({"a.com"})
        assert ds.total_samples == 3
        assert ds.unique_domains() == {"a.com"}

    def test_restrict_preserves_metadata(self):
        ds = make_dataset(SAMPLE, name="x", has_volume=False)
        restricted = ds.restrict({"b.com"})
        assert restricted.name == "x"
        assert restricted.feed_type is FeedType.MX_HONEYPOT
        assert not restricted.has_volume


class TestFeedTypes:
    def test_five_paper_categories_plus_hybrid(self):
        values = {t.value for t in FeedType}
        assert values == {
            "human_identified", "blacklist", "mx_honeypot",
            "honey_account", "botnet", "hybrid",
        }


class TestFinalize:
    def test_finalize_drops_out_of_window_and_sorts(self, small_world):
        from repro.feeds.base import FeedCollector

        class Dummy(FeedCollector):
            name = "dummy"
            feed_type = FeedType.MX_HONEYPOT

            def collect(self, world):
                records = [
                    FeedRecord("a.com", -5),
                    FeedRecord("b.com", 50),
                    FeedRecord("c.com", world.timeline.end + 10),
                    FeedRecord("d.com", 10),
                ]
                return self._finalize(world, records)

        ds = Dummy().collect(small_world)
        assert [r.domain for r in ds.records] == ["d.com", "b.com"]
        assert [r.time for r in ds.records] == [10, 50]
