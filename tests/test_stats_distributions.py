"""Unit and property tests for samplers and empirical distributions."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.distributions import (
    EmpiricalDistribution,
    bounded_pareto,
    truncated_lognormal,
    weighted_choice,
    zipf_sample,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalized(self):
        weights = zipf_weights(100, 1.0)
        assert math.isclose(sum(weights), 1.0, rel_tol=1e-9)

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, 1.2)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_zero_exponent_uniform(self):
        weights = zipf_weights(4, 0.0)
        assert all(math.isclose(w, 0.25) for w in weights)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)

    @given(st.integers(1, 200), st.floats(0.0, 3.0))
    def test_property_normalized_and_positive(self, n, exponent):
        weights = zipf_weights(n, exponent)
        assert len(weights) == n
        assert math.isclose(sum(weights), 1.0, rel_tol=1e-9)
        assert all(w > 0 for w in weights)


class TestWeightedChoice:
    def test_deterministic_single(self):
        rng = random.Random(0)
        assert weighted_choice(rng, ["a"], [1.0]) == "a"

    def test_zero_weight_never_chosen(self):
        rng = random.Random(0)
        chosen = {
            weighted_choice(rng, ["a", "b"], [0.0, 1.0]) for _ in range(200)
        }
        assert chosen == {"b"}

    def test_respects_proportions(self):
        rng = random.Random(1)
        draws = [
            weighted_choice(rng, ["a", "b"], [3.0, 1.0]) for _ in range(4000)
        ]
        fraction_a = draws.count("a") / len(draws)
        assert 0.70 < fraction_a < 0.80

    def test_errors(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            weighted_choice(rng, [], [])
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a", "b"], [0.0, 0.0])
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [-1.0])


class TestZipfSample:
    def test_in_range(self):
        rng = random.Random(2)
        for _ in range(100):
            assert 0 <= zipf_sample(rng, 10, 1.0) < 10

    def test_head_heavier_than_tail(self):
        rng = random.Random(3)
        draws = [zipf_sample(rng, 20, 1.5) for _ in range(2000)]
        assert draws.count(0) > draws.count(19)


class TestBoundedPareto:
    def test_within_bounds(self):
        rng = random.Random(4)
        for _ in range(500):
            x = bounded_pareto(rng, 1.1, 10.0, 1000.0)
            assert 10.0 <= x <= 1000.0

    def test_heavy_tail_skews_low(self):
        rng = random.Random(5)
        draws = [bounded_pareto(rng, 1.5, 1.0, 1e6) for _ in range(3000)]
        median = sorted(draws)[len(draws) // 2]
        assert median < 10.0  # most mass near the lower bound

    def test_rejects_bad_parameters(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            bounded_pareto(rng, 0.0, 1.0, 10.0)
        with pytest.raises(ValueError):
            bounded_pareto(rng, 1.0, 10.0, 5.0)
        with pytest.raises(ValueError):
            bounded_pareto(rng, 1.0, 0.0, 5.0)

    @given(
        st.floats(0.3, 3.0),
        st.floats(0.5, 100.0),
        st.floats(101.0, 1e7),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60)
    def test_property_bounds(self, alpha, low, high, seed):
        rng = random.Random(seed)
        x = bounded_pareto(rng, alpha, low, high)
        assert low <= x <= high


class TestTruncatedLognormal:
    def test_within_bounds(self):
        rng = random.Random(6)
        for _ in range(200):
            x = truncated_lognormal(rng, 0.0, 1.0, 0.5, 3.0)
            assert 0.5 <= x <= 3.0

    def test_pathological_bounds_clamped(self):
        rng = random.Random(7)
        x = truncated_lognormal(rng, 0.0, 0.1, 1e9, 2e9)
        assert 1e9 <= x <= 2e9

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            truncated_lognormal(random.Random(0), 0.0, 1.0, 5.0, 1.0)


class TestEmpiricalDistribution:
    def test_probabilities_sum_to_one(self):
        d = EmpiricalDistribution({"a": 1, "b": 3})
        assert math.isclose(sum(d.as_probabilities().values()), 1.0)

    def test_probability_values(self):
        d = EmpiricalDistribution({"a": 1, "b": 3})
        assert d.probability("a") == 0.25
        assert d.probability("b") == 0.75
        assert d.probability("missing") == 0.0

    def test_zero_counts_dropped(self):
        d = EmpiricalDistribution({"a": 0, "b": 2})
        assert "a" not in d
        assert len(d) == 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution({"a": -1})

    def test_from_observations(self):
        d = EmpiricalDistribution.from_observations("aabbbc")
        assert d.count("b") == 3
        assert d.total == 6

    def test_restrict_renormalizes(self):
        d = EmpiricalDistribution({"a": 1, "b": 1, "c": 2})
        r = d.restrict({"a", "b"})
        assert r.probability("a") == 0.5
        assert "c" not in r

    def test_top(self):
        d = EmpiricalDistribution({"a": 5, "b": 9, "c": 1})
        assert d.top(2) == [("b", 9.0), ("a", 5.0)]

    def test_entropy_uniform_maximal(self):
        uniform = EmpiricalDistribution({"a": 1, "b": 1})
        skewed = EmpiricalDistribution({"a": 99, "b": 1})
        assert uniform.entropy() > skewed.entropy()
        assert math.isclose(uniform.entropy(), math.log(2))

    def test_empty(self):
        d = EmpiricalDistribution({})
        assert d.total == 0
        assert d.probability("x") == 0.0
        assert d.entropy() == 0.0

    def test_support_frozen(self):
        d = EmpiricalDistribution({"a": 1})
        assert d.support == frozenset({"a"})

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=5),
            # Subnormal counts would underflow to probability 0.0 when
            # divided by a huge total; keep counts in a sane range.
            st.one_of(st.just(0.0), st.floats(1e-9, 1e6)),
            max_size=30,
        )
    )
    def test_property_probabilities_valid(self, counts):
        d = EmpiricalDistribution(counts)
        probs = d.as_probabilities()
        assert all(0.0 < p <= 1.0 for p in probs.values())
        if probs:
            assert math.isclose(sum(probs.values()), 1.0, rel_tol=1e-9)
