"""Unit tests for the simulation clock."""

import pytest

from repro.simtime import (
    MEASUREMENT_DAYS,
    MEASUREMENT_MINUTES,
    MINUTES_PER_DAY,
    MINUTES_PER_HOUR,
    Timeline,
    days,
    hours,
    minutes_to_days,
    minutes_to_hours,
)


class TestConversions:
    def test_hours_to_minutes(self):
        assert hours(1) == 60
        assert hours(2.5) == 150

    def test_days_to_minutes(self):
        assert days(1) == MINUTES_PER_DAY
        assert days(0.5) == 720

    def test_rounding(self):
        assert hours(1.0001) == 60
        assert days(1 / MINUTES_PER_DAY) == 1

    def test_minutes_to_hours(self):
        assert minutes_to_hours(90) == 1.5

    def test_minutes_to_days(self):
        assert minutes_to_days(MINUTES_PER_DAY * 3) == 3.0

    def test_measurement_window_is_92_days(self):
        assert MEASUREMENT_DAYS == 92
        assert MEASUREMENT_MINUTES == 92 * 24 * 60

    def test_constants_consistent(self):
        assert MINUTES_PER_DAY == 24 * MINUTES_PER_HOUR


class TestTimeline:
    def test_defaults(self):
        tl = Timeline()
        assert tl.start == 0
        assert tl.end == MEASUREMENT_MINUTES
        assert tl.duration == MEASUREMENT_MINUTES
        assert tl.duration_days == 92.0

    def test_contains(self):
        tl = Timeline()
        assert tl.contains(0)
        assert tl.contains(tl.end - 1)
        assert not tl.contains(-1)
        assert not tl.contains(tl.end)

    def test_oracle_window(self):
        tl = Timeline()
        assert tl.oracle_end - tl.oracle_start == days(5)
        assert tl.in_oracle_window(tl.oracle_start)
        assert not tl.in_oracle_window(tl.oracle_end)
        assert not tl.in_oracle_window(tl.oracle_start - 1)

    def test_clamp(self):
        tl = Timeline()
        assert tl.clamp(-100) == 0
        assert tl.clamp(tl.end + 100) == tl.end - 1
        assert tl.clamp(500) == 500

    def test_day_of(self):
        tl = Timeline()
        assert tl.day_of(0) == 0
        assert tl.day_of(MINUTES_PER_DAY) == 1
        assert tl.day_of(MINUTES_PER_DAY * 2 - 1) == 1

    def test_iter_days(self):
        tl = Timeline(start=0, end=days(3), oracle_start=0, oracle_days=1)
        entries = list(tl.iter_days())
        assert entries == [
            (0, 0),
            (1, MINUTES_PER_DAY),
            (2, 2 * MINUTES_PER_DAY),
        ]

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            Timeline(start=100, end=50, oracle_start=100, oracle_days=0)

    def test_rejects_oracle_outside_window(self):
        with pytest.raises(ValueError):
            Timeline(start=0, end=days(10), oracle_start=days(11))

    def test_rejects_oracle_overflowing_end(self):
        with pytest.raises(ValueError):
            Timeline(start=0, end=days(10), oracle_start=days(8),
                     oracle_days=5)

    def test_custom_window(self):
        tl = Timeline(start=0, end=days(30), oracle_start=days(10),
                      oracle_days=2)
        assert tl.duration_days == 30.0
        assert tl.oracle_end == days(12)
