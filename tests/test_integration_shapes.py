"""Integration tests: the paper's qualitative findings must hold.

These run against the full paper-scale pipeline (built once per
session).  Each test asserts one *shape* from the paper -- orderings and
rough magnitudes, not absolute numbers (our substrate is a simulator,
not the authors' testbed).  EXPERIMENTS.md records the exact measured
values next to the paper's.
"""

import pytest

from repro.analysis.coverage import exclusivity_summary
from repro.analysis.proportionality import MAIL
from repro.simtime import MINUTES_PER_DAY


@pytest.fixture(scope="module")
def result(paper_pipeline):
    return paper_pipeline.run()


@pytest.fixture(scope="module")
def table1(paper_pipeline):
    return paper_pipeline.table1()


@pytest.fixture(scope="module")
def table2(paper_pipeline):
    return {row.feed: row for row in paper_pipeline.table2()}


@pytest.fixture(scope="module")
def table3(paper_pipeline):
    return {row.feed: row for row in paper_pipeline.table3()}


class TestTable1Shapes:
    def test_hu_smallest_volume_feed(self, table1):
        # The headline irony: the lowest-volume source has the best
        # coverage.  Hu's sample count is within the bottom two of the
        # eight base (non-blacklist) feeds.
        base = {
            name: cells["samples"]
            for name, cells in table1.items()
            if name not in ("dbl", "uribl")
        }
        ranked = sorted(base, key=base.get)
        assert "Hu" in ranked[:2]

    def test_poisoned_feeds_have_most_uniques(self, table1):
        # Bot and mx2 unique counts are inflated by the DGA flood.
        uniques = {n: c["unique"] for n, c in table1.items()}
        top_two = sorted(uniques, key=uniques.get, reverse=True)[:2]
        assert set(top_two) == {"Bot", "mx2"}

    def test_hyb_largest_sample_count(self, table1):
        samples = {n: c["samples"] for n, c in table1.items()}
        assert max(samples, key=samples.get) == "Hyb"

    def test_dbl_larger_than_uribl(self, table1):
        assert table1["dbl"]["unique"] > table1["uribl"]["unique"]

    def test_hu_most_uniques_among_clean_feeds(self, table1):
        clean = {
            n: c["unique"]
            for n, c in table1.items()
            if n not in ("Bot", "mx2", "Hyb")
        }
        assert max(clean, key=clean.get) == "Hu"


class TestTable2Shapes:
    def test_blacklists_fully_registered(self, table2):
        assert table2["dbl"].dns == 1.0
        assert table2["uribl"].dns == 1.0

    def test_poisoned_feeds_low_dns(self, table2):
        assert table2["Bot"].dns < 0.10
        assert table2["mx2"].dns < 0.20
        # ...while the unpoisoned honeypots are nearly fully registered.
        assert table2["mx1"].dns > 0.95
        assert table2["mx3"].dns > 0.95

    def test_hyb_intermediate_dns(self, table2):
        assert 0.5 < table2["Hyb"].dns < 0.8

    def test_hu_junk_reports_visible(self, table2):
        assert 0.8 < table2["Hu"].dns < 0.97

    def test_blacklists_cleanest_on_benign_lists(self, table2):
        for blacklist in ("dbl", "uribl"):
            assert table2[blacklist].alexa < 0.04
            assert table2[blacklist].odp < 0.04

    def test_honeypots_carry_chaff(self, table2):
        # Full-URL feeds inherit the chaff load: several percent of
        # their domains sit on the benign lists.
        for feed in ("mx1", "mx3", "Ac1", "Ac2"):
            assert table2[feed].alexa + table2[feed].odp > 0.04

    def test_hu_low_tagged_fraction(self, table2):
        # Hu's uniques are dominated by quiet/untagged spam.
        assert table2["Hu"].tagged < table2["mx1"].tagged
        assert table2["Hu"].tagged < table2["uribl"].tagged

    def test_hu_http_below_honeypots(self, table2):
        # Quiet fly-by-night domains die fast, dragging Hu's HTTP rate
        # below the broadcast-heavy honeypot feeds (55% vs ~83%).
        assert table2["Hu"].http < table2["mx1"].http
        assert table2["Hu"].http < table2["Ac1"].http


class TestTable3Shapes:
    def test_hu_top_tagged_contributor(self, table3):
        tagged = {n: r.total_tagged for n, r in table3.items()}
        assert max(tagged, key=tagged.get) == "Hu"

    def test_bot_negligible_exclusive_tagged(self, table3):
        # "None of its tagged domains were exclusive" -- bots spam
        # broadly, so everything they advertise is seen elsewhere.
        assert table3["Bot"].exclusive_tagged <= 0.03 * max(
            1, table3["Bot"].total_tagged
        )

    def test_blacklists_no_exclusives(self, table3):
        # By construction: blacklist domains are restricted to those
        # occurring in a base feed (Section 3.4).
        assert table3["dbl"].exclusive_all == 0
        assert table3["uribl"].exclusive_all == 0

    def test_hu_and_hyb_dominate_live_exclusives(self, table3):
        exclusives = {n: r.exclusive_live for n, r in table3.items()}
        top_two = sorted(exclusives, key=exclusives.get, reverse=True)[:2]
        assert set(top_two) == {"Hu", "Hyb"}

    def test_live_exclusivity_around_sixty_percent(self, paper_pipeline):
        summary = exclusivity_summary(paper_pipeline.comparison, "live")
        assert 0.45 < summary["fraction"] < 0.70  # paper: 60%

    def test_tagged_exclusivity_much_lower(self, paper_pipeline):
        live = exclusivity_summary(paper_pipeline.comparison, "live")
        tagged = exclusivity_summary(paper_pipeline.comparison, "tagged")
        assert tagged["fraction"] < live["fraction"]


class TestCoverageShapes:
    def test_hu_covers_most_tagged_domains(self, paper_pipeline):
        matrix = paper_pipeline.figure2("tagged")
        coverage = {
            feed: matrix.union_coverage(feed) for feed in matrix.feeds
        }
        assert max(coverage, key=coverage.get) == "Hu"
        assert coverage["Hu"] > 0.6

    def test_hu_plus_hyb_cover_nearly_all_live(self, paper_pipeline):
        matrix = paper_pipeline.figure2("live")
        assert matrix.combined_coverage(["Hu", "Hyb"]) > 0.85  # paper: 98%

    def test_hyb_mostly_exclusive_live(self, paper_pipeline):
        points = {
            p.feed: p for p in paper_pipeline.figure1("live")
        }
        assert points["Hyb"].exclusive_fraction > 0.5  # paper: ~65%

    def test_blacklists_cover_honeypots_well(self, paper_pipeline):
        matrix = paper_pipeline.figure2("tagged")
        for honeypot in ("mx1", "mx3", "Ac1"):
            assert matrix.fraction("uribl", honeypot) > 0.3


class TestVolumeShapes:
    def test_benign_dominates_live_volume(self, paper_pipeline):
        # Figure 3 left: before exclusion, the handful of Alexa/ODP
        # domains carry a large share of "live" volume in most feeds.
        rows = {r.feed: r for r in paper_pipeline.figure3("live")}
        dominated = sum(
            1
            for r in rows.values()
            if r.benign_fraction > 0.4 * max(1e-12, r.covered_fraction)
        )
        assert dominated >= 5

    def test_tagged_volume_leaders(self, paper_pipeline):
        # Figure 3 right: Hu, uribl and dbl lead tagged volume coverage.
        rows = {r.feed: r for r in paper_pipeline.figure3("tagged")}
        ranked = sorted(
            rows, key=lambda n: rows[n].covered_fraction, reverse=True
        )
        assert set(ranked[:3]) == {"Hu", "uribl", "dbl"}

    def test_hyb_poor_tagged_volume(self, paper_pipeline):
        rows = {r.feed: r for r in paper_pipeline.figure3("tagged")}
        assert rows["Hyb"].covered_fraction < 0.5 * rows["uribl"].covered_fraction


class TestAffiliateShapes:
    def test_hu_covers_all_programs(self, paper_pipeline):
        matrix = paper_pipeline.figure4()
        assert matrix.union_coverage("Hu") == 1.0

    def test_bot_covers_few_programs(self, paper_pipeline):
        matrix = paper_pipeline.figure4()
        assert matrix.union_coverage("Bot") < 0.4  # paper: 15/45 = 33%

    def test_hu_top_rx_affiliate_coverage(self, paper_pipeline):
        matrix = paper_pipeline.figure5()
        coverage = {f: matrix.union_coverage(f) for f in matrix.feeds}
        assert max(coverage, key=coverage.get) == "Hu"

    def test_bot_rx_affiliates_single_digits(self, paper_pipeline):
        # Botnet operators are themselves the affiliates; the paper
        # finds only 3 RX identifiers in the Bot feed.
        matrix = paper_pipeline.figure5()
        assert matrix.intersection("Bot", "All") <= 6

    def test_revenue_ordering(self, paper_pipeline):
        rows = {r.feed: r for r in paper_pipeline.figure6()}
        assert rows["Hu"].covered_revenue >= rows["dbl"].covered_revenue
        assert rows["dbl"].covered_revenue > rows["Bot"].covered_revenue

    def test_dbl_revenue_share_of_hu(self, paper_pipeline):
        # Paper: dbl's affiliates represent over 78% of Hu's revenue.
        rows = {r.feed: r for r in paper_pipeline.figure6()}
        assert rows["dbl"].covered_revenue > 0.5 * rows["Hu"].covered_revenue


class TestProportionalityShapes:
    def test_mx_feeds_resemble_each_other(self, paper_pipeline):
        vd = paper_pipeline.figure7()
        within_mx = [
            vd["mx1"]["mx2"], vd["mx1"]["mx3"], vd["mx2"]["mx3"]
        ]
        across = [vd["mx1"]["Ac2"], vd["mx2"]["Ac2"], vd["mx3"]["Ac2"]]
        assert sum(within_mx) / 3 < sum(across) / 3

    def test_matrix_symmetry_and_diagonal(self, paper_pipeline):
        vd = paper_pipeline.figure7()
        for a in vd:
            assert vd[a][a] == pytest.approx(0.0, abs=1e-9)
            for b in vd:
                assert vd[a][b] == pytest.approx(vd[b][a], abs=1e-9)

    def test_kendall_diagonal_one(self, paper_pipeline):
        kt = paper_pipeline.figure8()
        for feed in kt:
            if feed == MAIL:
                continue
            assert kt[feed][feed] == pytest.approx(1.0)

    def test_mx2_closest_to_mail(self, paper_pipeline):
        # Paper: "the mx2 feed comes closest to approximating the
        # domain volume distribution of live mail".
        vd = paper_pipeline.figure7()
        distances = {
            feed: row[MAIL] for feed, row in vd.items() if feed != MAIL
        }
        assert min(distances, key=distances.get) == "mx2"

    def test_ac2_most_unlike_other_feeds(self, paper_pipeline):
        # Paper: "the Ac2 feed stands out as being most unlike the rest".
        vd = paper_pipeline.figure7()
        feeds = [f for f in vd if f != MAIL]

        def mean_distance(feed):
            others = [vd[feed][o] for o in feeds if o != feed]
            return sum(others) / len(others)

        averages = {feed: mean_distance(feed) for feed in feeds}
        ranked = sorted(averages, key=averages.get, reverse=True)
        assert "Ac2" in ranked[:2]


class TestTimingShapes:
    def test_dbl_and_hu_earliest(self, paper_pipeline):
        stats = paper_pipeline.figure9()
        day = MINUTES_PER_DAY
        assert stats["dbl"].median < 1 * day
        assert stats["Hu"].median < 1 * day
        # Honeypot feeds lag by roughly days.
        for feed in ("mx1", "mx3", "Ac1"):
            assert stats[feed].median > stats["Hu"].median

    def test_hu_sees_most_within_days(self, paper_pipeline):
        stats = paper_pipeline.figure9()
        assert stats["Hu"].p75 < 2 * MINUTES_PER_DAY

    def test_honeypots_relative_to_each_other_fast(self, paper_pipeline):
        # Figure 10: against their own aggregate, honeypot latency
        # collapses to hours.
        fig9 = paper_pipeline.figure9()
        fig10 = paper_pipeline.figure10()
        for feed in ("mx1", "mx3"):
            assert fig10[feed].median < fig9[feed].median

    def test_last_appearance_gaps_small(self, paper_pipeline):
        # Figure 11: honeypots estimate campaign end within ~a day.
        stats = paper_pipeline.figure11()
        for feed, box in stats.items():
            assert box.median < 2 * MINUTES_PER_DAY

    def test_duration_underestimated_with_long_tails(self, paper_pipeline):
        stats = paper_pipeline.figure12()
        for box in stats.values():
            assert box.median >= 0.0
            assert box.p95 >= box.median
