"""Unit tests for the ten feed collectors, over the small world."""

import pytest

from repro.ecosystem.entities import AddressStrategy, CampaignClass
from repro.feeds import (
    BlacklistConfig,
    BlacklistFeed,
    BotnetFeed,
    BotnetFeedConfig,
    FeedType,
    HoneyAccountConfig,
    HoneyAccountFeed,
    HumanFeedConfig,
    HumanIdentifiedFeed,
    HybridFeed,
    HybridFeedConfig,
    MxHoneypotConfig,
    MxHoneypotFeed,
    PAPER_FEED_ORDER,
    collect_all,
    standard_feed_suite,
)

SEED = 7


class TestMxHoneypot:
    def test_brute_force_only_without_harvest(self, small_world):
        feed = MxHoneypotFeed(
            MxHoneypotConfig(
                name="t-mx", inclusion_probability=1.0, catch_rate=0.05,
                benign_fp_domains=0, chaff_factor=0.0,
            ),
            SEED,
        )
        dataset = feed.collect(small_world)
        brute_domains = set()
        for c in small_world.campaigns:
            if (
                c.strategy is AddressStrategy.BRUTE_FORCE
                and c.campaign_class is not CampaignClass.DGA_POISON
            ):
                brute_domains.update(c.domains)
        assert dataset.unique_domains() <= brute_domains

    def test_dga_only_if_configured(self, small_world):
        base = dict(
            name="t", inclusion_probability=0.5, catch_rate=0.01,
            benign_fp_domains=0, chaff_factor=0.0,
        )
        blind = MxHoneypotFeed(MxHoneypotConfig(**base), SEED)
        seeing = MxHoneypotFeed(
            MxHoneypotConfig(**base, sees_dga=True, dga_catch_rate=0.05),
            SEED,
        )
        blind_ds = blind.collect(small_world)
        seeing_ds = seeing.collect(small_world)
        dga = small_world.dga_domains
        assert not (blind_ds.unique_domains() & dga)
        assert seeing_ds.unique_domains() & dga

    def test_benign_leakage_injected(self, small_world):
        feed = MxHoneypotFeed(
            MxHoneypotConfig(
                name="t", inclusion_probability=0.0, catch_rate=0.0,
                benign_fp_domains=10, benign_fp_volume=50.0,
            ),
            SEED,
        )
        dataset = feed.collect(small_world)
        benign = small_world.benign.alexa_set | set(
            small_world.benign.newsletter_domains
        )
        assert dataset.unique_domains() <= benign
        assert 1 <= dataset.n_unique <= 10

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MxHoneypotConfig(name="t", inclusion_probability=1.5,
                             catch_rate=0.1)
        with pytest.raises(ValueError):
            MxHoneypotConfig(name="t", inclusion_probability=0.5,
                             catch_rate=-0.1)


class TestHoneyAccount:
    def test_never_sees_purchased_or_social(self, small_world):
        feed = HoneyAccountFeed(
            HoneyAccountConfig(
                name="t-ac", harvested_inclusion=1.0, brute_inclusion=1.0,
                catch_rate=0.05, benign_fp_domains=0, chaff_factor=0.0,
            ),
            SEED,
        )
        dataset = feed.collect(small_world)
        invisible = set()
        for c in small_world.campaigns:
            if c.strategy in (
                AddressStrategy.PURCHASED, AddressStrategy.SOCIAL
            ):
                invisible.update(c.domains)
        visible = dataset.unique_domains()
        # Domains exclusively advertised by invisible campaigns never
        # appear (shared redirector domains may).
        benign = small_world.benign.all_benign
        assert not (visible & (invisible - benign))

    def test_never_sees_dga(self, small_world):
        feed = HoneyAccountFeed(
            HoneyAccountConfig(
                name="t-ac", harvested_inclusion=1.0, brute_inclusion=1.0,
                catch_rate=0.1, benign_fp_domains=0,
            ),
            SEED,
        )
        dataset = feed.collect(small_world)
        assert not (dataset.unique_domains() & small_world.dga_domains)

    def test_volume_bias_reduces_campaigns(self, small_world):
        base = dict(
            name="t", harvested_inclusion=0.9, brute_inclusion=0.9,
            catch_rate=0.02, benign_fp_domains=0, chaff_factor=0.0,
        )
        unbiased = HoneyAccountFeed(HoneyAccountConfig(**base), SEED)
        biased = HoneyAccountFeed(
            HoneyAccountConfig(**base, volume_bias_scale=50_000.0), SEED
        )
        assert (
            biased.collect(small_world).n_unique
            < unbiased.collect(small_world).n_unique
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HoneyAccountConfig(name="t", harvested_inclusion=2.0,
                               brute_inclusion=0.1, catch_rate=0.1)


class TestBotnetFeed:
    def test_only_monitored_botnet_output(self, small_world):
        feed = BotnetFeed(
            BotnetFeedConfig(monitor_fraction=0.05, chaff_factor=0.0), SEED
        )
        dataset = feed.collect(small_world)
        monitored = small_world.monitored_botnet_ids()
        allowed = set()
        for c in small_world.campaigns:
            if c.botnet_id in monitored:
                allowed.update(c.domains)
        assert dataset.unique_domains() <= allowed

    def test_dga_flood_present(self, small_world):
        feed = BotnetFeed(
            BotnetFeedConfig(monitor_fraction=0.02, dga_monitor_factor=3.0),
            SEED,
        )
        dataset = feed.collect(small_world)
        dga_seen = dataset.unique_domains() & small_world.dga_domains
        assert len(dga_seen) > 0.2 * len(small_world.dga_domains)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BotnetFeedConfig(monitor_fraction=-0.1)


class TestHumanFeed:
    def test_suppression_caps_per_domain_counts(self, small_world):
        low_cap = HumanIdentifiedFeed(
            HumanFeedConfig(suppression_cap_mean=1.0, junk_domains=0,
                            newsletter_fp_domains=0),
            SEED,
        ).collect(small_world)
        counts = low_cap.domain_counts()
        # With cap mean 1 nearly every domain appears once or twice.
        heavy = [d for d, c in counts.items() if c > 5]
        assert len(heavy) < 0.02 * max(1, len(counts))

    def test_junk_and_newsletters_injected(self, small_world):
        dataset = HumanIdentifiedFeed(
            HumanFeedConfig(junk_domains=50, newsletter_fp_domains=10),
            SEED,
        ).collect(small_world)
        junk_seen = dataset.unique_domains() & set(small_world.junk_domains)
        assert len(junk_seen) == 50

    def test_sees_quiet_campaigns(self, small_world):
        dataset = HumanIdentifiedFeed(HumanFeedConfig(), SEED).collect(
            small_world
        )
        quiet_domains = set()
        for c in small_world.campaigns:
            if c.campaign_class is CampaignClass.QUIET_TARGETED:
                quiet_domains.update(c.domains)
        seen = dataset.unique_domains() & quiet_domains
        # The provider catches most quiet campaigns; honeypots (tested
        # via the integration shapes) catch almost none.
        assert len(seen) > 0.4 * len(quiet_domains)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HumanFeedConfig(provider_share=0.0)
        with pytest.raises(ValueError):
            HumanFeedConfig(report_rate=1.5)
        with pytest.raises(ValueError):
            HumanFeedConfig(suppression_cap_mean=0.5)

    def test_no_volume_information(self, small_world):
        dataset = HumanIdentifiedFeed(HumanFeedConfig(), SEED).collect(
            small_world
        )
        assert not dataset.has_volume


class TestBlacklistFeed:
    def make(self, **overrides):
        params = dict(
            name="t-bl",
            broad_volume_scale=500.0,
            user_volume_scale=100.0,
            user_weight=1.0,
            latency_mean_minutes=300.0,
            benign_fp_domains=0,
        )
        params.update(overrides)
        return BlacklistFeed(BlacklistConfig(**params), SEED)

    def test_one_record_per_domain(self, small_world):
        dataset = self.make().collect(small_world)
        assert dataset.total_samples == dataset.n_unique
        assert not dataset.has_volume

    def test_never_lists_unregistered(self, small_world):
        dataset = self.make().collect(small_world)
        for domain in dataset.unique_domains():
            assert small_world.registry.is_registered(domain)

    def test_no_dga_listings(self, small_world):
        dataset = self.make().collect(small_world)
        dga_registered = {
            d for d in small_world.dga_domains
            if small_world.registry.is_registered(d)
        }
        # Registered DGA collisions are possible but the flood is not.
        assert (
            dataset.unique_domains() & small_world.dga_domains
        ) <= dga_registered

    def test_listing_after_first_advertisement(self, small_world):
        dataset = self.make().collect(small_world)
        index = small_world.placements_by_domain()
        for domain, listed_at in dataset.first_seen().items():
            if domain not in index:
                continue  # benign false positive
            first_advertised = min(p.start for _, p in index[domain])
            assert listed_at >= first_advertised

    def test_benign_false_positives(self, small_world):
        dataset = self.make(
            broad_volume_scale=1e12, user_volume_scale=1e12,
            benign_fp_domains=7,
        ).collect(small_world)
        benign = small_world.benign.alexa_set | small_world.benign.odp_domains
        assert len(dataset.unique_domains() & benign) == 7

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BlacklistConfig(name="t", broad_volume_scale=0.0,
                            user_volume_scale=1.0, user_weight=0.5,
                            latency_mean_minutes=60.0)
        with pytest.raises(ValueError):
            BlacklistConfig(name="t", broad_volume_scale=1.0,
                            user_volume_scale=1.0, user_weight=2.0,
                            latency_mean_minutes=60.0)


class TestHybridFeed:
    def test_webspam_domains_present(self, small_world):
        dataset = HybridFeed(HybridFeedConfig(), SEED).collect(small_world)
        webspam_seen = dataset.unique_domains() & set(small_world.hyb_webspam)
        assert len(webspam_seen) == len(small_world.hyb_webspam)

    def test_no_volume_information(self, small_world):
        dataset = HybridFeed(HybridFeedConfig(), SEED).collect(small_world)
        assert not dataset.has_volume

    def test_volume_penalty_reduces_loud_inclusion(self):
        cfg = HybridFeedConfig()
        feed = HybridFeed(cfg, SEED)
        assert feed._inclusion_probability(100.0) == cfg.domain_inclusion
        assert (
            feed._inclusion_probability(1e6)
            < 0.2 * cfg.domain_inclusion
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HybridFeedConfig(domain_inclusion=1.5)
        with pytest.raises(ValueError):
            HybridFeedConfig(volume_penalty_scale=0.0)


class TestSuite:
    def test_standard_suite_names(self):
        names = [c.name for c in standard_feed_suite(SEED)]
        assert sorted(names) == sorted(PAPER_FEED_ORDER)

    def test_collect_all_keys(self, small_world, small_datasets):
        assert set(small_datasets) == set(PAPER_FEED_ORDER)

    def test_collect_all_rejects_duplicates(self, small_world):
        suite = standard_feed_suite(SEED)
        with pytest.raises(ValueError):
            collect_all(small_world, suite + [suite[0]])

    def test_feed_types(self, small_datasets):
        assert small_datasets["Hu"].feed_type is FeedType.HUMAN_IDENTIFIED
        assert small_datasets["dbl"].feed_type is FeedType.BLACKLIST
        assert small_datasets["uribl"].feed_type is FeedType.BLACKLIST
        assert small_datasets["mx1"].feed_type is FeedType.MX_HONEYPOT
        assert small_datasets["Ac1"].feed_type is FeedType.HONEY_ACCOUNT
        assert small_datasets["Bot"].feed_type is FeedType.BOTNET
        assert small_datasets["Hyb"].feed_type is FeedType.HYBRID

    def test_collection_deterministic(self, small_world):
        a = collect_all(small_world, standard_feed_suite(SEED))
        b = collect_all(small_world, standard_feed_suite(SEED))
        for name in a:
            assert a[name].records == b[name].records

    def test_volume_flags_match_paper(self, small_datasets):
        # Section 4.3: Hu, Hyb and the blacklists carry no volume info.
        without = {n for n, d in small_datasets.items() if not d.has_volume}
        assert without == {"Hu", "Hyb", "dbl", "uribl"}
