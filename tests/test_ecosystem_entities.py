"""Unit tests for ecosystem entities."""

import pytest

from repro.ecosystem.entities import (
    AddressStrategy,
    Affiliate,
    AffiliateProgram,
    Botnet,
    Campaign,
    CampaignClass,
    DomainPlacement,
    GoodsCategory,
    total_emitted_volume,
)
from repro.simtime import days


def make_placement(domain="x.com", start=0, end=100, volume=50.0, lag=0):
    return DomainPlacement(domain, start, end, volume, broadcast_lag=lag)


def make_campaign(placements=None, **kwargs):
    defaults = dict(
        campaign_id=1,
        campaign_class=CampaignClass.DIRECT_BROADCAST,
        strategy=AddressStrategy.BRUTE_FORCE,
        placements=placements or [make_placement()],
    )
    defaults.update(kwargs)
    return Campaign(**defaults)


class TestDomainPlacement:
    def test_duration_and_rate(self):
        p = make_placement(start=0, end=200, volume=100.0)
        assert p.duration == 200
        assert p.rate == 0.5

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            make_placement(start=10, end=10)

    def test_rejects_nonpositive_volume(self):
        with pytest.raises(ValueError):
            make_placement(volume=0.0)

    def test_rejects_negative_lag(self):
        with pytest.raises(ValueError):
            make_placement(lag=-1)

    def test_broadcast_start_clamped(self):
        p = make_placement(start=0, end=100, lag=500)
        assert p.broadcast_start == 99

    def test_broadcast_start_normal(self):
        p = make_placement(start=10, end=100, lag=20)
        assert p.broadcast_start == 30


class TestAffiliateProgram:
    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            AffiliateProgram(0, "x", GoodsCategory.PHARMA, 0.0)

    def test_fields(self):
        p = AffiliateProgram(3, "rx", GoodsCategory.PHARMA, 1.0, True)
        assert p.embeds_affiliate_id


class TestAffiliate:
    def test_rejects_negative_revenue(self):
        with pytest.raises(ValueError):
            Affiliate(0, 0, -1.0)


class TestBotnet:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Botnet(0, "x", 0.0, True)


class TestCampaign:
    def test_start_end_span_placements(self):
        c = make_campaign([
            make_placement("a.com", 100, 200, 10),
            make_placement("b.com", 50, 150, 10),
        ])
        assert c.start == 50
        assert c.end == 200

    def test_total_volume(self):
        c = make_campaign([
            make_placement("a.com", 0, 10, 30),
            make_placement("b.com", 0, 10, 70),
        ])
        assert c.total_volume == 100

    def test_domains_deduplicated_in_order(self):
        c = make_campaign([
            make_placement("b.com", 0, 10, 1),
            make_placement("a.com", 10, 20, 1),
            make_placement("b.com", 20, 30, 1),
        ])
        assert c.domains == ["b.com", "a.com"]

    def test_domain_interval_spans_reuses(self):
        c = make_campaign([
            make_placement("b.com", 0, 10, 1),
            make_placement("b.com", 20, 30, 1),
        ])
        assert c.domain_interval("b.com") == (0, 30)

    def test_domain_interval_unknown_raises(self):
        with pytest.raises(KeyError):
            make_campaign().domain_interval("nope.com")

    def test_requires_placements(self):
        with pytest.raises(ValueError):
            Campaign(
                campaign_id=1,
                campaign_class=CampaignClass.DIRECT_BROADCAST,
                strategy=AddressStrategy.BRUTE_FORCE,
                placements=[],
            )

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            make_campaign(chaff_probability=1.5)
        with pytest.raises(ValueError):
            make_campaign(redirector_probability=-0.1)
        with pytest.raises(ValueError):
            make_campaign(filter_evasion=2.0)

    def test_is_tagged_class(self):
        assert make_campaign(program_id=4).is_tagged_class
        assert not make_campaign().is_tagged_class

    def test_placements_for(self):
        p1 = make_placement("a.com", 0, 10, 1)
        p2 = make_placement("a.com", 20, 30, 1)
        c = make_campaign([p1, p2, make_placement("b.com", 0, 10, 1)])
        assert c.placements_for("a.com") == [p1, p2]


class TestTotalEmittedVolume:
    def test_sums_campaigns(self):
        c1 = make_campaign([make_placement(volume=10)])
        c2 = make_campaign([make_placement(volume=15)], campaign_id=2)
        assert total_emitted_volume([c1, c2]) == 25

    def test_empty(self):
        assert total_emitted_volume([]) == 0
