"""Unit tests for proportionality and timing analyses."""

import pytest

from repro.analysis import FeedComparison
from repro.analysis.proportionality import (
    MAIL,
    closest_to_mail,
    distributions_with_mail,
    kendall_matrix,
    mail_distribution,
    tagged_distribution,
    variation_distance_matrix,
)
from repro.analysis.timing import (
    BoxStats,
    campaign_end_times,
    campaign_start_times,
    duration_errors,
    first_appearance_latencies,
    last_appearance_gaps,
    _percentile,
)
from repro.feeds.base import FeedDataset, FeedRecord, FeedType
from repro.simtime import days

from tests.test_analysis_context import make_feeds


@pytest.fixture()
def comparison(toy_world):
    return FeedComparison(toy_world, make_feeds(), seed=0)


class TestTaggedDistribution:
    def test_counts_restricted_to_tagged(self, comparison):
        dist = tagged_distribution(comparison, "mx1")
        assert dist.count("loudpills.com") == 2
        assert dist.count("loudpills2.net") == 1
        assert "shortlink.us" not in dist  # Alexa-excluded

    def test_requires_volume_feed(self, comparison):
        with pytest.raises(ValueError):
            tagged_distribution(comparison, "Hu")

    def test_mail_distribution_support(self, comparison):
        dist = mail_distribution(comparison, ["mx1"])
        assert dist.support <= {"loudpills.com", "loudpills2.net"}


class TestMatrices:
    def test_variation_distance_matrix_shape(self, comparison):
        matrix = variation_distance_matrix(comparison)
        assert set(matrix) == {"mx1", MAIL}
        assert matrix["mx1"]["mx1"] == 0.0
        assert 0.0 <= matrix["mx1"][MAIL] <= 1.0

    def test_kendall_matrix_shape(self, comparison):
        matrix = kendall_matrix(comparison)
        assert set(matrix) == {"mx1", MAIL}
        assert -1.0 <= matrix["mx1"][MAIL] <= 1.0

    def test_distributions_with_mail(self, comparison):
        dists = distributions_with_mail(comparison)
        assert MAIL in dists
        assert "mx1" in dists

    def test_closest_to_mail_ordering(self):
        matrix = {
            "a": {MAIL: 0.9},
            "b": {MAIL: 0.2},
            MAIL: {MAIL: 0.0},
        }
        assert closest_to_mail(matrix) == ["b", "a"]
        assert closest_to_mail(matrix, smaller_is_closer=False) == ["a", "b"]


class TestBoxStats:
    def test_from_values(self):
        stats = BoxStats.from_values([1, 2, 3, 4, 5])
        assert stats.median == 3
        assert stats.p25 == 2
        assert stats.p75 == 4
        assert stats.mean == 3
        assert stats.n == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxStats.from_values([])

    def test_scaled(self):
        stats = BoxStats.from_values([60, 120]).scaled(60)
        assert stats.median == 1.5
        assert stats.n == 2

    def test_percentile_interpolation(self):
        assert _percentile([0, 10], 0.5) == 5.0
        assert _percentile([7], 0.99) == 7.0
        with pytest.raises(ValueError):
            _percentile([], 0.5)


class TestAggregateTimes:
    def test_campaign_start_is_min_across_feeds(self, comparison):
        starts = campaign_start_times(
            comparison, ["Hu", "mx1"], {"loudpills.com"}
        )
        assert starts["loudpills.com"] == days(11)

    def test_campaign_end_is_max_across_feeds(self, comparison):
        ends = campaign_end_times(
            comparison, ["Hu", "mx1"], {"loudpills.com"}
        )
        assert ends["loudpills.com"] == days(13)

    def test_restricted_to_requested_domains(self, comparison):
        starts = campaign_start_times(comparison, ["Hu"], set())
        assert starts == {}


class TestFirstAppearance:
    def test_latency_relative_to_reference(self, comparison):
        stats = first_appearance_latencies(
            comparison, ["mx1"], reference_feeds=["Hu", "mx1"]
        )
        # mx1 first saw loudpills at day 12 vs aggregate day 11 -> 1 day;
        # loudpills2 is mx1-exclusive -> latency 0.
        assert stats["mx1"].n == 2
        assert stats["mx1"].mean == pytest.approx(days(0.5))
        assert stats["mx1"].median == pytest.approx(days(0.5))

    def test_self_reference_zero_for_single_feed(self, comparison):
        stats = first_appearance_latencies(comparison, ["mx1"])
        assert stats["mx1"].median == 0.0

    def test_unknown_kind_rejected(self, comparison):
        with pytest.raises(ValueError):
            first_appearance_latencies(comparison, ["mx1"], kind="bogus")


class TestLastAppearanceAndDuration:
    def test_gaps_non_negative(self, comparison):
        stats = last_appearance_gaps(
            comparison, ["mx1"], reference_feeds=["Hu", "mx1"]
        )
        assert stats["mx1"].p5 >= 0.0

    def test_duration_errors_non_negative(self, comparison):
        stats = duration_errors(
            comparison, ["mx1"], reference_feeds=["Hu", "mx1"]
        )
        assert stats["mx1"].p5 >= 0.0

    def test_duration_error_exact(self, comparison):
        # loudpills: aggregate duration day 11..13 = 2 days; mx1
        # lifetime day 12..13 = 1 day; error 1 day.
        # loudpills2: singleton -> duration == lifetime == 0.
        stats = duration_errors(
            comparison, ["mx1"], reference_feeds=["Hu", "mx1"]
        )
        assert stats["mx1"].n == 2
        assert stats["mx1"].mean == pytest.approx(days(0.5))

    def test_feeds_without_domains_skipped(self, toy_world):
        empty = FeedDataset("empty", FeedType.MX_HONEYPOT, [])
        feeds = make_feeds()
        feeds["empty"] = empty
        comparison = FeedComparison(toy_world, feeds)
        stats = first_appearance_latencies(comparison, ["empty", "mx1"])
        assert "empty" not in stats


class TestEmptyReferenceFeeds:
    """An explicit empty reference set is a caller bug, not a default.

    Regression: ``reference_feeds=[]`` used to be treated like ``None``
    (falsy), silently measuring against the measured feeds instead of
    the aggregate the caller named.
    """

    def test_first_appearance_rejects_empty_reference(self, comparison):
        with pytest.raises(ValueError, match="non-empty"):
            first_appearance_latencies(
                comparison, ["mx1"], reference_feeds=[]
            )

    def test_last_appearance_rejects_empty_reference(self, comparison):
        with pytest.raises(ValueError, match="non-empty"):
            last_appearance_gaps(comparison, ["mx1"], reference_feeds=[])

    def test_duration_errors_rejects_empty_reference(self, comparison):
        with pytest.raises(ValueError, match="non-empty"):
            duration_errors(comparison, ["mx1"], reference_feeds=())

    def test_none_still_defaults_to_measured_feeds(self, comparison):
        explicit = first_appearance_latencies(
            comparison, ["mx1"], reference_feeds=["mx1"]
        )
        defaulted = first_appearance_latencies(comparison, ["mx1"])
        assert defaulted == explicit
