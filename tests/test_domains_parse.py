"""Unit tests for domain normalization and registered-domain extraction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.domains.parse import (
    InvalidDomainError,
    normalize_domain,
    registered_domain,
    split_domain,
    try_registered_domain,
)

_label = st.from_regex(r"[a-z0-9]([a-z0-9-]{0,8}[a-z0-9])?", fullmatch=True)


class TestNormalizeDomain:
    def test_lowercases(self):
        assert normalize_domain("ExAmPle.COM") == "example.com"

    def test_strips_whitespace_and_trailing_dot(self):
        assert normalize_domain("  example.com.  ") == "example.com"

    def test_rejects_empty(self):
        with pytest.raises(InvalidDomainError):
            normalize_domain("")

    def test_rejects_single_label(self):
        with pytest.raises(InvalidDomainError):
            normalize_domain("localhost")

    def test_rejects_bad_characters(self):
        for bad in ("exa mple.com", "ex_ample.com", "exämple.com",
                    "-bad.com", "bad-.com", ".com", "a..com"):
            with pytest.raises(InvalidDomainError):
                normalize_domain(bad)

    def test_rejects_overlong_name(self):
        name = ".".join(["a" * 60] * 5)
        with pytest.raises(InvalidDomainError):
            normalize_domain(name)

    def test_rejects_overlong_label(self):
        with pytest.raises(InvalidDomainError):
            normalize_domain("a" * 64 + ".com")

    def test_rejects_non_string(self):
        with pytest.raises(InvalidDomainError):
            normalize_domain(42)

    def test_accepts_63_char_label(self):
        assert normalize_domain("a" * 63 + ".com") == "a" * 63 + ".com"

    def test_digits_and_hyphens(self):
        assert normalize_domain("a-1.b2.com") == "a-1.b2.com"


class TestSplitDomain:
    def test_three_parts(self):
        sub, registrant, suffix = split_domain("www.shop.example.com")
        assert (sub, registrant, suffix) == ("www.shop", "example", "com")

    def test_no_subdomain(self):
        sub, registrant, suffix = split_domain("example.com")
        assert (sub, registrant, suffix) == ("", "example", "com")

    def test_multi_label_suffix(self):
        sub, registrant, suffix = split_domain("a.example.co.uk")
        assert (sub, registrant, suffix) == ("a", "example", "co.uk")

    def test_bare_suffix_raises(self):
        with pytest.raises(InvalidDomainError):
            split_domain("co.uk")


class TestRegisteredDomain:
    def test_paper_example(self):
        # Section 3.1's canonical example.
        assert registered_domain("cs.ucsd.edu") == "ucsd.edu"

    def test_identity_on_registered(self):
        assert registered_domain("ucsd.edu") == "ucsd.edu"

    def test_idempotent(self):
        once = registered_domain("a.b.example.com")
        assert registered_domain(once) == once

    @given(_label, _label)
    def test_property_subdomain_invariance(self, sub, registrant):
        base = f"{registrant}.com"
        assert registered_domain(f"{sub}.{base}") == registered_domain(base)


class TestTryRegisteredDomain:
    def test_valid(self):
        assert try_registered_domain("x.example.com") == "example.com"

    def test_invalid_returns_none(self):
        assert try_registered_domain("not a domain") is None
        assert try_registered_domain("com") is None
