"""Unit tests for the purity and coverage analyses (toy world)."""

import math

import pytest

from repro.analysis import FeedComparison, purity_table
from repro.analysis.coverage import (
    OverlapMatrix,
    coverage_table,
    domain_sets,
    exclusive_counts,
    exclusive_scatter,
    exclusivity_summary,
    pairwise_overlap,
)
from repro.analysis.purity import purity_row

from tests.test_analysis_context import make_feeds


@pytest.fixture()
def comparison(toy_world):
    return FeedComparison(toy_world, make_feeds(), seed=0)


class TestPurity:
    def test_hu_row_exact(self, comparison):
        row = purity_row(comparison, "Hu")
        # Hu uniques: loudpills.com (reg), quietwatch.biz (reg),
        # megaportal.com (reg benign), qwxkzj.com (unregistered junk).
        assert row.n_domains == 4
        assert row.n_zone_checkable == 4
        assert row.dns == 0.75
        assert row.http == 0.75     # all but the junk domain are live
        assert row.tagged == 0.5    # loudpills + quietwatch
        assert row.alexa == 0.25    # megaportal
        assert row.odp == 0.0

    def test_mx_row_counts_redirector_as_alexa(self, comparison):
        row = purity_row(comparison, "mx1")
        assert row.n_domains == 3
        assert row.alexa == pytest.approx(1 / 3)
        assert row.tagged == 1.0    # all three crawls tag (incl. redirect)

    def test_blacklist_row_pure(self, comparison):
        row = purity_row(comparison, "dbl")
        assert row.dns == 1.0
        assert row.alexa == 0.0 and row.odp == 0.0

    def test_table_covers_all_feeds(self, comparison):
        rows = purity_table(comparison)
        assert [r.feed for r in rows] == ["Hu", "mx1", "dbl"]

    def test_percentages_view(self, comparison):
        row = purity_row(comparison, "Hu").as_percentages()
        assert row["dns"] == 75.0

    def test_empty_feed(self, toy_world):
        from repro.feeds.base import FeedDataset, FeedType
        feeds = make_feeds()
        feeds["empty"] = FeedDataset("empty", FeedType.MX_HONEYPOT, [])
        comparison = FeedComparison(toy_world, feeds)
        row = purity_row(comparison, "empty")
        assert row.n_domains == 0
        assert row.dns == 0.0


class TestExclusiveCounts:
    def test_basic(self):
        sets = {"a": {"x", "y"}, "b": {"y", "z"}}
        assert exclusive_counts(sets) == {"a": 1, "b": 1}

    def test_all_shared(self):
        sets = {"a": {"x"}, "b": {"x"}}
        assert exclusive_counts(sets) == {"a": 0, "b": 0}

    def test_empty_feed(self):
        assert exclusive_counts({"a": set()}) == {"a": 0}


class TestCoverageTable:
    def test_rows_exact(self, comparison):
        rows = {r.feed: r for r in coverage_table(comparison)}
        hu = rows["Hu"]
        assert hu.total_all == 4
        # megaportal + qwxkzj occur only in Hu, so 2 exclusives.
        assert hu.exclusive_all == 2
        assert hu.total_live == 2
        assert hu.exclusive_live == 0   # both shared with dbl/mx1
        assert hu.total_tagged == 2
        mx = rows["mx1"]
        assert mx.total_tagged == 2
        assert mx.exclusive_tagged == 1  # loudpills2.net only in mx1

    def test_domain_sets_kinds(self, comparison):
        assert set(domain_sets(comparison, "all")) == {"Hu", "mx1", "dbl"}
        with pytest.raises(ValueError):
            domain_sets(comparison, "bogus")

    def test_exclusivity_summary(self, comparison):
        summary = exclusivity_summary(comparison, "tagged")
        assert summary["total"] == 3
        assert summary["exclusive"] == 1
        assert math.isclose(summary["fraction"], 1 / 3)


class TestScatter:
    def test_points(self, comparison):
        points = {p.feed: p for p in exclusive_scatter(comparison, "all")}
        assert points["Hu"].distinct == 4
        assert points["Hu"].exclusive == 2
        assert math.isclose(points["Hu"].exclusive_fraction, 0.5)
        assert math.isclose(points["Hu"].log_distinct, math.log10(4))

    def test_zero_exclusive_log(self, comparison):
        points = {p.feed: p for p in exclusive_scatter(comparison, "live")}
        assert points["Hu"].log_exclusive == 0.0


class TestOverlapMatrix:
    def test_cells(self, comparison):
        matrix = pairwise_overlap(comparison, "tagged")
        # Hu tagged = {loudpills, quietwatch}; mx1 = {loudpills, loudpills2}.
        assert matrix.intersection("Hu", "mx1") == 1
        assert matrix.fraction("Hu", "mx1") == 0.5
        fraction, count = matrix.cell("mx1", "Hu")
        assert (fraction, count) == (0.5, 1)

    def test_all_column(self, comparison):
        matrix = pairwise_overlap(comparison, "tagged")
        assert matrix.union_size == 3
        assert matrix.fraction("Hu", matrix.ALL) == pytest.approx(2 / 3)
        assert matrix.columns()[-1] == matrix.ALL

    def test_combined_coverage(self, comparison):
        matrix = pairwise_overlap(comparison, "tagged")
        assert matrix.combined_coverage(["Hu", "mx1"]) == 1.0

    def test_self_coverage_is_total(self, comparison):
        matrix = pairwise_overlap(comparison, "live")
        for feed in matrix.feeds:
            assert matrix.fraction(feed, feed) == (
                1.0 if matrix.column_domains(feed) else 0.0
            )

    def test_empty_column(self):
        matrix = OverlapMatrix({"a": set(), "b": {"x"}})
        assert matrix.fraction("b", "a") == 0.0
        assert matrix.union_coverage("b") == 1.0
