"""CLI tests for the ``stream`` subcommand and the ``--quiet`` flag."""

import pytest

from repro.__main__ import main


class TestStreamCli:
    def test_stream_prints_final_tables(self, capsys):
        code = main(["--small", "--seed", "7", "stream"])
        assert code == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "Table 2" in captured.out
        assert "Table 3" in captured.out
        assert "[stream] done:" in captured.err

    def test_stream_matches_batch_run_table1(self, capsys):
        assert main(["--small", "--seed", "7", "-q", "stream"]) == 0
        stream_out = capsys.readouterr().out
        assert main(["--small", "--seed", "7", "-q", "run"]) == 0
        run_out = capsys.readouterr().out

        def table1_section(text):
            start = text.index("Table 1")
            return text[start : text.index("\n\n", start)]

        assert table1_section(stream_out) == table1_section(run_out)

    def test_snapshot_progress_lines(self, capsys):
        code = main(
            ["--small", "--seed", "7", "stream", "--snapshot-every", "30"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "[stream] day 30/92:" in err
        assert "[stream] day 60/92:" in err
        assert "records/s" in err

    def test_checkpoint_then_resume_is_identical(self, tmp_path, capsys):
        path = str(tmp_path / "ck.json")
        code = main(
            ["--small", "--seed", "7", "-q", "stream",
             "--until-day", "46", "--checkpoint", path]
        )
        assert code == 0
        capsys.readouterr()

        code = main(
            ["--small", "--seed", "7", "-q", "stream", "--resume", path]
        )
        assert code == 0
        resumed_out = capsys.readouterr().out

        assert main(["--small", "--seed", "7", "-q", "stream"]) == 0
        straight_out = capsys.readouterr().out
        assert resumed_out == straight_out

    def test_resume_with_wrong_seed_fails_cleanly(self, tmp_path, capsys):
        path = str(tmp_path / "ck.json")
        assert main(
            ["--small", "--seed", "7", "-q", "stream",
             "--until-day", "10", "--checkpoint", path]
        ) == 0
        capsys.readouterr()
        code = main(
            ["--small", "--seed", "8", "-q", "stream", "--resume", path]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_resume_from_missing_file_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["--small", "--seed", "7", "-q", "stream",
             "--resume", str(tmp_path / "nope.json")]
        )
        assert code == 2
        assert "cannot read checkpoint" in capsys.readouterr().err

    def test_unwritable_checkpoint_path_fails_cleanly(self, tmp_path, capsys):
        target = tmp_path / "file-not-dir"
        target.write_text("x")
        code = main(
            ["--small", "--seed", "7", "-q", "stream",
             "--checkpoint", str(target / "ck.json")]
        )
        assert code == 2
        assert "cannot write checkpoint" in capsys.readouterr().err

    def test_resume_from_garbage_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("{}")
        code = main(
            ["--small", "--seed", "7", "-q", "stream", "--resume", str(path)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_until_day_prints_asof_header(self, capsys):
        code = main(
            ["--small", "--seed", "7", "stream", "--until-day", "20"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "[stream] as of day" in captured.err
        assert "Table 3" in captured.out


class TestQuietFlag:
    @pytest.mark.parametrize(
        "argv",
        [
            ["--small", "--seed", "7", "-q", "stream"],
            ["--small", "--seed", "7", "--quiet", "run"],
            ["--small", "--seed", "7", "-q", "recommend", "coverage"],
            ["--small", "--seed", "7", "-q", "filter"],
        ],
        ids=["stream", "run", "recommend", "filter"],
    )
    def test_quiet_silences_stderr(self, argv, capsys):
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert captured.out != ""

    def test_progress_goes_to_stderr_not_stdout(self, capsys):
        assert main(["--small", "--seed", "7", "run"]) == 0
        captured = capsys.readouterr()
        assert "Building world" in captured.err
        assert "Building world" not in captured.out
