"""Sharded world build: determinism, packing, merge, and scale summary.

The load-bearing invariant is that shard count is *pure execution
width*: ``shards=1`` is byte-identical to the monolithic
``WorldBuilder.build()``, and any other count produces the same world
because every build unit draws from its own labelled RNG stream and the
merge folds with commutative (or canonically ordered) operations.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domains import salt_token
from repro.domains.names import SpamNameGenerator
from repro.ecosystem import (
    WorldBuilder,
    build_world_sharded,
    scaled_config,
    small_config,
    summarize_world_sharded,
    world_fingerprint,
)
from repro.ecosystem.shard import (
    ContentFingerprint,
    build_plan,
    build_unit,
    merge_units,
    pack_unit,
    shard_ranges,
    unpack_unit,
)
from repro.io.artifacts import fingerprint
from repro.parallel import WorkerCrashed
from repro.parallel.fanout import fork_available
from repro.stats.rng import SeedSequence

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def _crash_task(payload):  # pragma: no cover - runs in a worker
    os._exit(21)


@pytest.fixture(scope="module")
def ctx_and_plan():
    builder = WorldBuilder(small_config(), seed=7)
    ctx = builder.context()
    return ctx, build_plan(ctx)


@pytest.fixture(scope="module")
def all_units(ctx_and_plan):
    ctx, plan = ctx_and_plan
    return [build_unit(ctx, plan, i) for i in range(len(plan.units))]


class TestSaltGrammar:
    def test_salt_token_injective(self):
        tokens = [salt_token(i) for i in range(3000)]
        assert len(set(tokens)) == len(tokens)
        assert all(t.isalpha() and t.islower() for t in tokens)

    def test_salt_token_rejects_negative(self):
        with pytest.raises(ValueError):
            salt_token(-1)

    def test_salted_names_disjoint_across_salts(self):
        names = {}
        for salt_index in range(4):
            rng = SeedSequence(7).rng(f"salt-test.{salt_index}")
            gen = SpamNameGenerator(
                rng, "pharma", salt=salt_token(salt_index)
            )
            names[salt_index] = {gen.generate() for _ in range(200)}
        for a in names:
            for b in names:
                if a != b:
                    assert not (names[a] & names[b])

    def test_salt_must_be_alphabetic(self):
        rng = SeedSequence(7).rng("salt-test.bad")
        with pytest.raises(ValueError):
            SpamNameGenerator(rng, "pharma", salt="a-b")


class TestPlanAndRanges:
    def test_ranges_partition_the_unit_sequence(self, ctx_and_plan):
        _, plan = ctx_and_plan
        for shards in (1, 2, 3, 8, 64, len(plan.units) + 5):
            ranges = shard_ranges(plan, shards)
            assert ranges[0][0] == 0
            assert ranges[-1][1] == len(plan.units)
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo
            assert all(lo < hi for lo, hi in ranges)

    @given(shards=st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_ranges_cover_exactly_once(self, ctx_and_plan, shards):
        _, plan = ctx_and_plan
        covered = [
            u for lo, hi in shard_ranges(plan, shards) for u in range(lo, hi)
        ]
        assert covered == list(range(len(plan.units)))


class TestPackedCodec:
    def test_roundtrip_every_unit_kind(self, ctx_and_plan, all_units):
        kinds = set()
        for unit in all_units:
            assert unpack_unit(pack_unit(unit)) == unit
            kinds.add(unit.kind)
        assert kinds == {"camp", "dga", "hyb", "junk"}


class TestShardCountInvariance:
    @pytest.mark.parametrize("seed", [7, 11, 2012])
    def test_shards_one_matches_monolithic(self, seed):
        config = small_config()
        mono = WorldBuilder(config, seed=seed).build()
        sharded = build_world_sharded(config, seed=seed, shards=1)
        assert world_fingerprint(mono) == world_fingerprint(sharded)
        assert mono.summary() == sharded.summary()

    @needs_fork
    @pytest.mark.parametrize("seed", [7, 11, 2012])
    def test_world_invariant_across_shard_counts(self, seed):
        config = small_config()
        prints = {
            shards: world_fingerprint(
                build_world_sharded(
                    config, seed=seed, shards=shards, jobs=2
                )
            )
            for shards in (1, 2, 8)
        }
        assert len(set(prints.values())) == 1

    @needs_fork
    def test_paper_tables_invariant_across_shard_counts(self):
        from repro.pipeline import PaperPipeline

        tables = {}
        for shards in (1, 2, 8):
            with PaperPipeline(
                small_config(), seed=7, shards=shards, jobs=2
            ) as pipeline:
                pipeline.run()
                tables[shards] = (
                    pipeline.render_table1()
                    + pipeline.render_table2()
                    + pipeline.render_table3()
                )
        assert tables[1] == tables[2] == tables[8]


class TestMergeCommutativity:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_camp_unit_order_does_not_matter(
        self, ctx_and_plan, all_units, data
    ):
        # Campaign units may arrive in any order (parallel shards finish
        # when they finish); registry min-fold, sorted campaign ids and
        # salt-disjoint hosting keys make the merge insensitive to it.
        # Redirector tags key on *shared* benign redirector domains, so
        # only the tagged key set is order-free -- the winning
        # (program, affiliate) pair relies on plan-order folding, which
        # run_stream's submission-order yield guarantees.  Block
        # (dga/hyb/junk) units keep their relative order, which shard
        # cuts preserve by construction.
        ctx, plan = ctx_and_plan
        camp_positions = [
            i for i, u in enumerate(all_units) if u.kind == "camp"
        ]
        perm = data.draw(st.permutations(camp_positions))
        shuffled = list(all_units)
        for target, source in zip(camp_positions, perm):
            shuffled[target] = all_units[source]

        baseline = merge_units(ctx, plan, iter(all_units))
        permuted = merge_units(ctx, plan, iter(shuffled))

        assert world_fingerprint(baseline) == world_fingerprint(permuted)
        assert len(permuted.registry) == len(baseline.registry)
        assert permuted.hosting == baseline.hosting
        assert set(permuted.redirector_tags) == set(baseline.redirector_tags)
        assert [c.campaign_id for c in permuted.campaigns] == [
            c.campaign_id for c in baseline.campaigns
        ]

    def test_unit_fingerprint_fold_matches_world(
        self, ctx_and_plan, all_units
    ):
        ctx, plan = ctx_and_plan
        fp = ContentFingerprint()
        for unit in all_units:
            fp.add_unit(plan, unit)
        fp.finish_units(plan)
        world = merge_units(ctx, plan, iter(all_units))
        assert fp.hexdigest() == world_fingerprint(world)


class TestWorkerCrash:
    @needs_fork
    def test_shard_worker_crash_raises(self, monkeypatch):
        import repro.ecosystem.shard as shard_mod

        monkeypatch.setattr(shard_mod, "_build_shard_task", _crash_task)
        with pytest.raises(WorkerCrashed):
            build_world_sharded(small_config(), seed=7, shards=4, jobs=2)


class TestScaleSummary:
    def test_summary_matches_assembled_world(self):
        config = small_config()
        world = build_world_sharded(config, seed=7, shards=1)
        summary = summarize_world_sharded(config, seed=7, shards=1)
        counts = world.summary()
        assert summary.campaigns == counts["campaigns"]
        assert summary.advertised_domains == counts["advertised_domains"]
        assert summary.registered_domains == counts["registered_domains"]
        assert summary.fingerprint == world_fingerprint(world)

    @needs_fork
    def test_summary_invariant_across_shard_counts(self):
        config = small_config()
        baseline = summarize_world_sharded(config, seed=7, shards=1)
        import dataclasses

        for shards in (3, 8):
            other = summarize_world_sharded(
                config, seed=7, shards=shards, jobs=2
            )
            # shard count is reported, everything else must fold equal
            assert dataclasses.replace(other, shards=1) == baseline


class TestScaledConfig:
    def test_scale_changes_cache_fingerprint(self):
        base = small_config()
        assert fingerprint(scaled_config(base, 2.0)) != fingerprint(base)
        assert fingerprint(scaled_config(base, 1.0)) == fingerprint(base)

    def test_scale_multiplies_populations(self):
        base = small_config()
        doubled = scaled_config(base, 2.0)
        for cls, before in base.campaign_classes.items():
            after = doubled.class_config(cls)
            assert after.count == max(1, round(before.count * 2.0))
        assert doubled.dga.n_domains == round(base.dga.n_domains * 2.0)
        # The benign web is infrastructure, not spam-side population.
        assert doubled.benign.alexa_size == base.benign.alexa_size

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            scaled_config(small_config(), 0.0)
