"""Unit tests for FeedComparison over the toy world with known feeds."""

import pytest

from repro.analysis import FeedComparison
from repro.feeds.base import FeedDataset, FeedRecord, FeedType
from repro.simtime import days


def make_feeds():
    """Two base feeds plus one blacklist, hand-authored."""
    hu = FeedDataset(
        "Hu",
        FeedType.HUMAN_IDENTIFIED,
        [
            FeedRecord("loudpills.com", days(11)),
            FeedRecord("loudpills.com", days(12)),
            FeedRecord("quietwatch.biz", days(41)),
            FeedRecord("megaportal.com", days(20)),   # chaff FP
            FeedRecord("qwxkzj.com", days(30)),       # junk FP
        ],
        has_volume=False,
    )
    mx = FeedDataset(
        "mx1",
        FeedType.MX_HONEYPOT,
        [
            FeedRecord("loudpills.com", days(12)),
            FeedRecord("loudpills.com", days(13)),
            FeedRecord("loudpills2.net", days(21)),
            FeedRecord("shortlink.us", days(14)),     # abused redirector
        ],
    )
    blacklist = FeedDataset(
        "dbl",
        FeedType.BLACKLIST,
        [
            FeedRecord("loudpills.com", days(11)),
            FeedRecord("quietwatch.biz", days(42)),
            FeedRecord("notinbase.com", days(50)),    # blacklist-only
        ],
        has_volume=False,
    )
    return {"Hu": hu, "mx1": mx, "dbl": blacklist}


@pytest.fixture()
def comparison(toy_world):
    return FeedComparison(toy_world, make_feeds(), seed=0)


class TestPartitions:
    def test_feed_names(self, comparison):
        assert comparison.feed_names == ["Hu", "mx1", "dbl"]

    def test_base_vs_blacklist(self, comparison):
        assert comparison.base_feed_names == ["Hu", "mx1"]
        assert comparison.blacklist_names == ["dbl"]

    def test_volume_feeds(self, comparison):
        assert comparison.volume_feed_names == ["mx1"]

    def test_requires_datasets(self, toy_world):
        with pytest.raises(ValueError):
            FeedComparison(toy_world, {})


class TestBlacklistRestriction:
    def test_blacklist_only_domains_dropped(self, comparison):
        assert "notinbase.com" not in comparison.unique_domains("dbl")
        assert comparison.blacklist_excluded_count("dbl") == 1

    def test_base_feeds_untouched(self, comparison):
        assert comparison.unique_domains("Hu") == {
            "loudpills.com", "quietwatch.biz", "megaportal.com", "qwxkzj.com"
        }

    def test_restriction_can_be_disabled(self, toy_world):
        unrestricted = FeedComparison(
            toy_world, make_feeds(), restrict_blacklists=False
        )
        assert "notinbase.com" in unrestricted.unique_domains("dbl")


class TestCrawlIntegration:
    def test_union_first_seen_is_min(self, comparison):
        first = comparison.union_first_seen()
        assert first["loudpills.com"] == days(11)
        assert first["quietwatch.biz"] == days(41)

    def test_crawl_results_cover_all_domains(self, comparison):
        results = comparison.crawl_results()
        assert set(results) == comparison.union_domains()

    def test_live_excludes_benign_and_dead(self, comparison):
        live = comparison.live_domains("Hu")
        # megaportal is Alexa-listed, qwxkzj never hosted.
        assert live == {"loudpills.com", "quietwatch.biz"}

    def test_tagged_excludes_redirector(self, comparison):
        # shortlink.us is tagged by the crawler but Alexa-listed, so the
        # conservative removal drops it (Section 4.1.4).
        assert comparison.tagged_domains("mx1") == {
            "loudpills.com", "loudpills2.net"
        }

    def test_excluded_benign(self, comparison):
        assert comparison.excluded_benign("mx1") == {"shortlink.us"}
        assert comparison.excluded_benign("mx1", tagged_only=True) == {
            "shortlink.us"
        }
        assert comparison.excluded_benign("Hu") == {"megaportal.com"}
        assert comparison.excluded_benign("Hu", tagged_only=True) == set()

    def test_all_live_and_tagged(self, comparison):
        assert comparison.all_live() == {
            "loudpills.com", "loudpills2.net", "quietwatch.biz"
        }
        assert comparison.all_tagged() == comparison.all_live()


class TestAffiliateLookups:
    def test_programs_of(self, comparison):
        assert comparison.programs_of("Hu") == {0, 1}
        assert comparison.programs_of("mx1") == {0}

    def test_rx_affiliates_of(self, comparison):
        assert comparison.rx_affiliates_of("Hu") == {0}
        assert comparison.rx_affiliates_of("mx1") == {0}
        # dbl's tagged set includes quietwatch (program 1, no embedding).
        assert comparison.rx_affiliates_of("dbl") == {0}
