"""Unit tests for volume coverage and affiliate analyses (toy world)."""

import pytest

from repro.analysis import FeedComparison
from repro.analysis.affiliates import (
    affiliate_coverage_matrix,
    exclusive_affiliates,
    program_coverage_matrix,
    revenue_coverage,
    rx_affiliate_sets,
)
from repro.analysis.volume import volume_coverage, volume_coverage_by_feed

from tests.test_analysis_context import make_feeds


@pytest.fixture()
def comparison(toy_world):
    return FeedComparison(toy_world, make_feeds(), seed=0)


class TestVolumeCoverage:
    def test_fractions_bounded(self, comparison):
        for kind in ("live", "tagged"):
            for row in volume_coverage(comparison, kind):
                assert 0.0 <= row.covered_fraction <= 1.0
                assert 0.0 <= row.benign_fraction <= 1.0
                assert row.stacked_total <= 1.0 + 1e-9

    def test_rejects_bad_kind(self, comparison):
        with pytest.raises(ValueError):
            volume_coverage(comparison, "all")

    def test_union_feed_would_cover_everything(self, comparison):
        rows = volume_coverage_by_feed(comparison, "live")
        # Hu + mx1 + dbl jointly hold every live domain, and the
        # benign stack accounts for the rest of the denominator.
        total_covered = max(r.covered_fraction for r in rows.values())
        assert total_covered > 0.0

    def test_benign_stack_from_redirector(self, comparison):
        rows = volume_coverage_by_feed(comparison, "tagged")
        # Only mx1 saw the abused redirector, so only it carries a
        # benign component in the tagged plot.
        assert rows["mx1"].benign_fraction > 0.0
        assert rows["Hu"].benign_fraction == 0.0

    def test_redirector_dominates_volume(self, comparison):
        # The Alexa-listed redirector's legit-mail volume dwarfs the
        # spam domains: the paper's Figure 3 hazard.
        rows = volume_coverage_by_feed(comparison, "tagged")
        assert rows["mx1"].benign_fraction > rows["mx1"].covered_fraction


class TestProgramCoverage:
    def test_matrix(self, comparison):
        matrix = program_coverage_matrix(comparison)
        assert matrix.union_size == 2
        assert matrix.intersection("Hu", "All") == 2
        assert matrix.intersection("mx1", "All") == 1
        assert matrix.fraction("mx1", "Hu") == 0.5


class TestAffiliateCoverage:
    def test_rx_sets(self, comparison):
        sets = rx_affiliate_sets(comparison)
        assert sets["Hu"] == {0}
        assert sets["mx1"] == {0}

    def test_matrix(self, comparison):
        matrix = affiliate_coverage_matrix(comparison)
        assert matrix.union_size == 1
        assert matrix.fraction("Hu", "mx1") == 1.0

    def test_exclusive_affiliates(self):
        sets = {"a": {1, 2}, "b": {2, 3}}
        assert exclusive_affiliates(sets) == {"a": {1}, "b": {3}}


class TestRevenueCoverage:
    def test_rows(self, comparison):
        rows = {r.feed: r for r in revenue_coverage(comparison)}
        # Affiliate 0 (RX) earns 100k; total RX revenue is 100k.
        assert rows["Hu"].covered_revenue == 100_000.0
        assert rows["Hu"].total_revenue == 100_000.0
        assert rows["Hu"].revenue_fraction == 1.0
        assert rows["Hu"].n_affiliates == 1

    def test_zero_total_safe(self, comparison, toy_world):
        # Remove all RX affiliates: fraction must not divide by zero.
        toy_world.affiliates.clear()
        rows = revenue_coverage(comparison)
        for row in rows:
            assert row.revenue_fraction == 0.0
