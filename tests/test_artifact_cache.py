"""The content-addressed artifact cache and its pipeline integration."""

from __future__ import annotations

import dataclasses
import enum
import os

import pytest

from repro.ecosystem import small_config
from repro.io.artifacts import (
    ARTIFACT_FORMAT,
    ArtifactCache,
    FingerprintError,
    artifact_key,
    code_fingerprint,
    default_cache_dir,
    fingerprint,
)
from repro.io.checkpoint import CHECKPOINT_SCHEMA_PIN
from repro.pipeline import PaperPipeline
from repro.pipeline import runner as runner_module


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------


class Color(enum.Enum):
    RED = 1
    BLUE = 2


@dataclasses.dataclass(frozen=True)
class Inner:
    weight: float


@dataclasses.dataclass(frozen=True)
class Outer:
    name: str
    inner: Inner
    tags: frozenset


class TestFingerprint:
    def test_stable_across_calls(self):
        value = Outer("x", Inner(2.5), frozenset({"a", "b"}))
        assert fingerprint(value) == fingerprint(value)

    def test_set_order_independent(self):
        assert fingerprint({"b", "a", "c"}) == fingerprint({"c", "a", "b"})

    def test_dict_key_order_independent(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_value_changes_change_fingerprint(self):
        base = Outer("x", Inner(2.5), frozenset())
        bumped = Outer("x", Inner(2.6), frozenset())
        assert fingerprint(base) != fingerprint(bumped)

    def test_enum_members_distinguished(self):
        assert fingerprint(Color.RED) != fingerprint(Color.BLUE)

    def test_config_fingerprint_is_deterministic(self):
        assert fingerprint(small_config()) == fingerprint(small_config())

    def test_unfingerprintable_type_rejected(self):
        with pytest.raises(FingerprintError):
            fingerprint(object())

    def test_artifact_key_varies_with_each_component(self):
        fp = fingerprint(small_config())
        base = artifact_key("render-all", fp, 7)
        assert artifact_key("pipeline-state", fp, 7) != base
        assert artifact_key("render-all", fp, 8) != base
        assert artifact_key("render-all", fp, 7, schema_pin="v9:x") != base
        assert artifact_key("render-all", fp, 7, extra="variant") != base
        assert artifact_key("render-all", fp, 7, code_pin="other") != base
        # The pins default to the live checkpoint schema pin and the
        # live code fingerprint, so schema bumps and source edits both
        # implicitly invalidate every cached artifact.
        assert base == artifact_key(
            "render-all", fp, 7, schema_pin=CHECKPOINT_SCHEMA_PIN
        )
        assert base == artifact_key(
            "render-all", fp, 7, code_pin=code_fingerprint()
        )

    def test_code_fingerprint_is_stable_hex(self):
        pin = code_fingerprint()
        assert pin == code_fingerprint()  # process-cached
        assert len(pin) == 64
        int(pin, 16)  # valid hex digest


# ----------------------------------------------------------------------
# The cache directory
# ----------------------------------------------------------------------


class TestArtifactCache:
    def test_round_trip(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = artifact_key("k", "fp", 1)
        assert cache.load(key) is None
        path = cache.store(key, {"rows": [1, 2]})
        assert os.path.exists(path)
        assert cache.load(key) == {"rows": [1, 2]}
        assert cache.contains(key)
        assert list(cache.keys()) == [key]
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = artifact_key("k", "fp", 1)
        cache.store(key, "payload")
        with open(cache.path_for(key), "wb") as handle:
            handle.write(b"\x80truncated garbage")
        assert cache.load(key) is None
        assert not cache.contains(key)

    def test_foreign_pickle_is_a_miss(self, tmp_path):
        import pickle

        cache = ArtifactCache(str(tmp_path))
        key = artifact_key("k", "fp", 1)
        os.makedirs(os.path.dirname(cache.path_for(key)), exist_ok=True)
        with open(cache.path_for(key), "wb") as handle:
            pickle.dump({"format": "something-else"}, handle)
        assert cache.load(key) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        a = artifact_key("k", "fp", 1)
        b = artifact_key("k", "fp", 2)
        cache.store(a, "payload")
        os.makedirs(os.path.dirname(cache.path_for(b)), exist_ok=True)
        os.replace(cache.path_for(a), cache.path_for(b))
        assert cache.load(b) is None

    def test_invalidate_and_clear(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        keys = [artifact_key("k", "fp", seed) for seed in range(3)]
        for key in keys:
            cache.store(key, "payload")
        assert cache.invalidate(keys[0])
        assert not cache.invalidate(keys[0])  # already gone
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_missing_root_is_empty(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "never-created"))
        assert list(cache.keys()) == []
        assert cache.load(artifact_key("k", "fp", 1)) is None

    def test_default_cache_dir_honors_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/custom-repro")
        assert default_cache_dir() == "/tmp/custom-repro"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", "/tmp/xdg")
        assert default_cache_dir() == os.path.join("/tmp/xdg", "repro")

    def test_envelope_format_marker(self):
        assert ARTIFACT_FORMAT == "repro-artifact"


# ----------------------------------------------------------------------
# Pipeline integration: skip world build + collection on warm cache
# ----------------------------------------------------------------------


class TestPipelineCache:
    def test_warm_run_skips_world_build(self, tmp_path, monkeypatch):
        cache = ArtifactCache(str(tmp_path))
        cold = PaperPipeline(small_config(), seed=7, cache=cache)
        cold_text = cold.render_all()

        calls = []
        real_build = runner_module.build_world

        def counting_build(*args, **kwargs):
            calls.append(1)
            return real_build(*args, **kwargs)

        monkeypatch.setattr(runner_module, "build_world", counting_build)
        warm = PaperPipeline(small_config(), seed=7, cache=cache)
        result = warm.run()
        assert calls == []  # state came from the cache
        assert warm.render_all() == cold_text
        assert sorted(result.datasets) == sorted(cold.run().datasets)

    def test_render_cache_returns_identical_text(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        reference = PaperPipeline(small_config(), seed=7).render_all()
        cold = PaperPipeline(small_config(), seed=7, cache=cache)
        assert cold.render_all() == reference
        warm = PaperPipeline(small_config(), seed=7, cache=cache)
        assert warm.render_all() == reference

    def test_cache_distinguishes_seeds(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        text_7 = PaperPipeline(small_config(), seed=7, cache=cache).render_all()
        text_11 = PaperPipeline(
            small_config(), seed=11, cache=cache
        ).render_all()
        assert text_7 != text_11
        # Both warm loads return their own seed's text.
        assert (
            PaperPipeline(small_config(), seed=7, cache=cache).render_all()
            == text_7
        )
        assert (
            PaperPipeline(small_config(), seed=11, cache=cache).render_all()
            == text_11
        )

    def test_custom_collectors_are_never_cached(self, tmp_path):
        from repro.feeds import standard_feed_suite

        cache = ArtifactCache(str(tmp_path))
        pipeline = PaperPipeline(
            small_config(),
            seed=7,
            collectors=standard_feed_suite(7)[:3],
            cache=cache,
        )
        pipeline.run()
        pipeline.render_all()
        assert len(cache) == 0

    def test_explicit_invalidation(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        pipeline = PaperPipeline(small_config(), seed=7, cache=cache)
        pipeline.render_all()
        assert len(cache) == 2  # pipeline-state + render-all
        state_key = pipeline._cache_key("pipeline-state")
        assert cache.invalidate(state_key)
        fresh = PaperPipeline(small_config(), seed=7, cache=cache)
        fresh.run()  # recomputes and re-stores
        assert cache.contains(state_key)


class TestCrossProcessConcurrency:
    """The serve cold-start pattern: several *processes* store and load
    the same key at once.  ``store`` writes via mkstemp + ``os.replace``
    (atomic on POSIX), and the envelope check turns any conceivable
    partial state into a miss -- so concurrent readers must only ever
    see a full payload or a miss, never a torn one."""

    def test_concurrent_writers_and_readers_never_tear(self, tmp_path):
        import multiprocessing
        import pickle

        cache_dir = str(tmp_path / "cache")
        payload = {"rows": list(range(2000)), "tag": "serve-cold-start"}
        key = "deadbeef" * 8  # fixed 64-hex key: every process collides
        blob = pickle.dumps(payload)

        def hammer(result_queue) -> None:
            from repro.io.artifacts import ArtifactCache

            cache = ArtifactCache(cache_dir)
            outcomes = []
            for _ in range(40):
                cache.store(key, pickle.loads(blob))
                loaded = cache.load(key)
                # A miss (None) is acceptable mid-replace; a partial
                # or corrupt payload is not.
                outcomes.append(loaded is None or loaded == payload)
            result_queue.put(all(outcomes))

        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        procs = [
            ctx.Process(target=hammer, args=(queue,)) for _ in range(4)
        ]
        for proc in procs:
            proc.start()
        results = [queue.get(timeout=120) for _ in procs]
        for proc in procs:
            proc.join(timeout=120)
        assert all(proc.exitcode == 0 for proc in procs)
        assert all(results)
        # After the storm the key holds one intact copy.
        cache = ArtifactCache(cache_dir)
        assert cache.load(key) == payload
        # No stray temp files survived the concurrent replaces.
        stray = [
            name
            for _, _, files in os.walk(cache_dir)
            for name in files
            if name.endswith(".tmp")
        ]
        assert stray == []

    def test_reader_mid_replace_sees_old_or_new_never_mixed(self, tmp_path):
        import multiprocessing

        cache_dir = str(tmp_path / "cache")
        key = "cafebabe" * 8
        cache = ArtifactCache(cache_dir)
        cache.store(key, "A" * 65536)

        def flip(stop_queue) -> None:
            from repro.io.artifacts import ArtifactCache

            writer = ArtifactCache(cache_dir)
            for index in range(60):
                writer.store(key, ("A" if index % 2 else "B") * 65536)
            stop_queue.put(True)

        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        proc = ctx.Process(target=flip, args=(queue,))
        proc.start()
        seen = set()
        while queue.empty():
            value = cache.load(key)
            if value is not None:
                seen.add(value[0])
                assert value in ("A" * 65536, "B" * 65536)
        proc.join(timeout=120)
        assert proc.exitcode == 0
        assert seen <= {"A", "B"} and seen
