#!/usr/bin/env python3
"""Run the analysis on externally-supplied feed files.

Real deployments receive feeds as files, not simulator objects.  This
example (a) exports the simulated feeds to JSONL -- the format a data
provider would ship, one sighting per line -- then (b) reloads them from
disk and re-runs the comparison, demonstrating that the analysis layer
is decoupled from the simulator: any JSONL feeds keyed to registered
domains can be compared the same way.

It also shows the URL-normalization path: a provider shipping full URLs
is reduced to registered domains with ``try_domain_of_url``.
"""

import argparse
import sys
import tempfile

from repro import FeedComparison, build_world, small_config
from repro.analysis import purity_table
from repro.domains.url import try_domain_of_url
from repro.feeds import standard_feed_suite
from repro.feeds.suite import collect_all
from repro.io import read_feeds_dir, write_feeds_dir
from repro.reporting.tables import Table, format_percent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    # A provider shipping raw URLs: normalize to registered domains.
    raw_urls = [
        "http://www.pillstore99.info/buy?aff=12",
        "https://shop.replica-watches.biz/",
        "http://192.0.2.7/clickme",       # IP literal: dropped
        "not a url at all",                # garbage: dropped
    ]
    normalized = [try_domain_of_url(u) for u in raw_urls]
    print("URL normalization:")
    for url, domain in zip(raw_urls, normalized):
        print(f"  {url!r:50} -> {domain!r}")

    print("\nBuilding world and collecting feeds...", flush=True)
    world = build_world(small_config(), seed=args.seed)
    datasets = collect_all(world, standard_feed_suite(args.seed))

    with tempfile.TemporaryDirectory() as directory:
        write_feeds_dir(datasets, directory)
        print(f"Exported {len(datasets)} feeds to {directory}")

        reloaded = read_feeds_dir(directory)
        print(f"Reloaded {len(reloaded)} feeds from disk")

        comparison = FeedComparison(world, reloaded, seed=args.seed)
        table = Table(
            ["Feed", "DNS", "HTTP", "Tagged"],
            title="Purity (recomputed from the on-disk feeds)",
        )
        for row in purity_table(comparison):
            table.add_row(
                row.feed,
                format_percent(row.dns),
                format_percent(row.http),
                format_percent(row.tagged),
            )
        print()
        print(table.render())

    # Consistency check: disk round-trip must not change the analysis.
    # (Feed *order* differs -- files load alphabetically -- so compare
    # keyed by feed name.)
    direct = {
        r.feed: r.dns
        for r in purity_table(FeedComparison(world, datasets, seed=args.seed))
    }
    roundtrip = {r.feed: r.dns for r in purity_table(comparison)}
    assert direct == roundtrip
    print("\nRound-trip analysis identical to in-memory analysis.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
