#!/usr/bin/env python3
"""Quickstart: regenerate the paper's headline results.

Builds the default world (seed 2012), collects the ten feeds, and
prints Tables 1-3 plus the two findings that motivate the whole study:
the smallest feed has the best coverage, and no single feed is good for
every question.

Run with ``--small`` for a miniature world that finishes in seconds.
"""

import argparse
import sys

from repro import PaperPipeline, paper_config, small_config


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small", action="store_true",
        help="use the miniature test world (fast, noisier shapes)",
    )
    parser.add_argument("--seed", type=int, default=2012)
    args = parser.parse_args(argv)

    config = small_config() if args.small else paper_config()
    pipeline = PaperPipeline(config, seed=args.seed)

    print("Building world and collecting the ten feeds...", flush=True)
    pipeline.run()

    print()
    print(pipeline.render_table1())
    print()
    print(pipeline.render_table2())
    print()
    print(pipeline.render_table3())

    # The headline: the lowest-volume feed contributes the most tagged
    # domains (Section 4.2.1).
    table1 = pipeline.table1()
    tagged = {row.feed: row.total_tagged for row in pipeline.table3()}
    best = max(tagged, key=tagged.get)
    print()
    print(
        f"Headline check: feed {best!r} contributes the most tagged "
        f"domains ({tagged[best]:,}) while receiving only "
        f"{table1[best]['samples']:,} samples."
    )
    matrix = pipeline.figure2("live")
    print(
        "Hu and Hyb together cover "
        f"{100 * matrix.combined_coverage(['Hu', 'Hyb']):.0f}% of all "
        "live domains."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
