#!/usr/bin/env python3
"""Evaluate a *new* feed against the standard ten.

The paper's practical payoff is a methodology for judging a spam feed
before betting research conclusions on it.  This example plays the role
of an operator who just bought access to a new MX honeypot network
("mx-new") and wants to know what it adds:

1. collect the standard ten feeds plus the candidate,
2. score the candidate on all four axes -- purity, coverage,
   proportionality, timing -- exactly as Section 4 does,
3. report its differential (exclusive) contribution.

Run with ``--small`` for a fast miniature world.
"""

import argparse
import sys

from repro import FeedComparison, build_world, paper_config, small_config
from repro.analysis import (
    coverage_table,
    first_appearance_latencies,
    purity_table,
    variation_distance_matrix,
)
from repro.analysis.proportionality import MAIL
from repro.feeds import MxHoneypotConfig, MxHoneypotFeed, standard_feed_suite
from repro.feeds.suite import collect_all
from repro.reporting.tables import Table, format_count, format_percent
from repro.simtime import MINUTES_PER_DAY

CANDIDATE = "mx-new"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true")
    parser.add_argument("--seed", type=int, default=2012)
    args = parser.parse_args(argv)

    config = small_config() if args.small else paper_config()
    print("Building world...", flush=True)
    world = build_world(config, seed=args.seed)

    candidate = MxHoneypotFeed(
        MxHoneypotConfig(
            name=CANDIDATE,
            inclusion_probability=0.7,
            harvested_inclusion=0.2,
            catch_rate=0.008,
            benign_fp_domains=40,
            benign_fp_volume=300.0,
        ),
        seed=args.seed + 1,
    )
    collectors = standard_feed_suite(args.seed) + [candidate]
    print("Collecting eleven feeds...", flush=True)
    datasets = collect_all(world, collectors)
    comparison = FeedComparison(world, datasets, seed=args.seed)

    # --- Purity -------------------------------------------------------
    row = {r.feed: r for r in purity_table(comparison)}[CANDIDATE]
    purity = Table(
        ["Indicator", "Value"], title=f"Purity of {CANDIDATE}"
    )
    purity.add_row("DNS registered", format_percent(row.dns))
    purity.add_row("HTTP live", format_percent(row.http))
    purity.add_row("Tagged storefronts", format_percent(row.tagged))
    purity.add_row("ODP listed (FP)", format_percent(row.odp))
    purity.add_row("Alexa listed (FP)", format_percent(row.alexa))
    print()
    print(purity.render())

    # --- Coverage -----------------------------------------------------
    rows = {r.feed: r for r in coverage_table(comparison)}
    cand = rows[CANDIDATE]
    coverage = Table(
        ["Metric", "Value"], title=f"Coverage of {CANDIDATE}"
    )
    coverage.add_row("Distinct domains", format_count(cand.total_all))
    coverage.add_row("Live domains", format_count(cand.total_live))
    coverage.add_row("Tagged domains", format_count(cand.total_tagged))
    coverage.add_row(
        "Exclusive live domains", format_count(cand.exclusive_live)
    )
    print()
    print(coverage.render())
    overlap_with_mx = len(
        comparison.live_domains(CANDIDATE) & comparison.live_domains("mx1")
    )
    print(
        f"Note: {overlap_with_mx:,} of its live domains are already in "
        "mx1 -- additional feeds of the same type offer reduced added "
        "value (Section 5)."
    )

    # --- Proportionality ----------------------------------------------
    volume_feeds = [
        n for n in comparison.volume_feed_names
    ]
    matrix = variation_distance_matrix(comparison, volume_feeds)
    print()
    print("Variation distance to the incoming-mail oracle:")
    for feed in sorted(matrix, key=lambda f: matrix[f][MAIL]):
        if feed == MAIL:
            continue
        marker = "  <-- candidate" if feed == CANDIDATE else ""
        print(f"  {feed:8} {matrix[feed][MAIL]:.3f}{marker}")

    # --- Timing -------------------------------------------------------
    measured = ["Hu", "dbl", "mx1", CANDIDATE]
    stats = first_appearance_latencies(
        comparison, measured, reference_feeds=comparison.feed_names
    )
    print()
    print("Median first-appearance latency (days after campaign start):")
    for feed in measured:
        if feed in stats:
            median_days = stats[feed].median / MINUTES_PER_DAY
            print(f"  {feed:8} {median_days:5.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
