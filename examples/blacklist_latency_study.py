#!/usr/bin/env python3
"""Blacklist latency sweep: how fast must a blacklist be to matter?

Section 4.4 shows that dbl lists most domains within a day of their
first appearance -- early enough to blunt a campaign -- while honeypot
feeds lag by days, after "spammers have already had multiple days to
monetize their campaigns."

This study sweeps the blacklist's listing latency and measures, for
each setting, (a) the median first-appearance lag relative to the other
feeds and (b) the fraction of eventual spam volume that arrives *after*
listing (the volume the blacklist could have blocked).
"""

import argparse
import sys

from repro import FeedComparison, build_world, paper_config, small_config
from repro.analysis import first_appearance_latencies
from repro.feeds import BlacklistConfig, BlacklistFeed, standard_feed_suite
from repro.feeds.suite import collect_all
from repro.reporting.tables import Table
from repro.simtime import MINUTES_PER_DAY, MINUTES_PER_HOUR

LATENCIES_HOURS = (1, 6, 12, 24, 48, 96)


def blockable_volume_fraction(world, dataset) -> float:
    """Share of emitted spam volume arriving after the listing time."""
    listed_at = dataset.first_seen()
    blockable = 0.0
    total = 0.0
    for campaign in world.campaigns:
        for placement in campaign.placements:
            total += placement.volume
            t = listed_at.get(placement.domain)
            if t is None or t >= placement.end:
                continue
            if t <= placement.start:
                blockable += placement.volume
            else:
                remaining = (placement.end - t) / placement.duration
                blockable += placement.volume * remaining
    return blockable / total if total else 0.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true")
    parser.add_argument("--seed", type=int, default=2012)
    args = parser.parse_args(argv)

    config = small_config() if args.small else paper_config()
    print("Building world...", flush=True)
    world = build_world(config, seed=args.seed)
    base = collect_all(world, standard_feed_suite(args.seed))

    table = Table(
        ["Latency (h)", "Listed domains", "Median lag (d)",
         "Blockable volume"],
        title="Blacklist listing-latency sweep",
    )
    for hours in LATENCIES_HOURS:
        feed = BlacklistFeed(
            BlacklistConfig(
                name="bl-sweep",
                broad_volume_scale=6_000.0,
                user_volume_scale=70.0,
                user_weight=1.0,
                latency_mean_minutes=hours * MINUTES_PER_HOUR,
                benign_fp_domains=0,
            ),
            args.seed,
        )
        datasets = dict(base)
        datasets["bl-sweep"] = feed.collect(world)
        comparison = FeedComparison(world, datasets, seed=args.seed)
        stats = first_appearance_latencies(
            comparison,
            ["bl-sweep"],
            reference_feeds=[n for n in datasets if n != "Bot"],
        )
        median_days = (
            stats["bl-sweep"].median / MINUTES_PER_DAY
            if "bl-sweep" in stats
            else float("nan")
        )
        blockable = blockable_volume_fraction(
            world, datasets["bl-sweep"]
        )
        table.add_row(
            str(hours),
            f"{datasets['bl-sweep'].n_unique:,}",
            f"{median_days:.2f}",
            f"{100 * blockable:.1f}%",
        )
        print(f"  latency {hours:>3}h done", flush=True)

    print()
    print(table.render())
    print()
    print(
        "Reading: every hour of listing latency is spam delivered; past "
        "~2 days the blacklist is no better than a honeypot feed."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
