#!/usr/bin/env python3
"""Section 5 as a decision tool: which feeds for which question?

The paper's conclusion gives per-question guidance ("human-identified
feeds are usually the best choice... avoid them for last-appearance
information... blacklists are the next best coverage source...").
This example runs the ranking engine for every study type, builds a
diverse feed portfolio under a budget, and prints the operational
filter trade-off table.
"""

import argparse
import sys

from repro import PaperPipeline, paper_config, small_config
from repro.analysis.filtering import evaluate_all_filters
from repro.analysis.recommend import (
    Question,
    diverse_portfolio,
    portfolio_coverage,
    rank_feeds,
)
from repro.reporting.tables import Table, format_percent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true")
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument(
        "--budget", type=int, default=3,
        help="portfolio size for the diversity recommendation",
    )
    args = parser.parse_args(argv)

    config = small_config() if args.small else paper_config()
    pipeline = PaperPipeline(config, seed=args.seed)
    print("Building world and collecting feeds...", flush=True)
    pipeline.run()
    comparison = pipeline.comparison

    print("\n=== Best feed per research question ===")
    for question in Question:
        ranking = rank_feeds(comparison, question)
        best = ranking[0]
        runner_up = ranking[1] if len(ranking) > 1 else None
        line = f"{question.value:16} -> {best.feed:6} ({best.rationale})"
        if runner_up:
            line += f"; next: {runner_up.feed}"
        print(line)

    print(f"\n=== Diverse portfolio (budget: {args.budget} feeds) ===")
    portfolio = diverse_portfolio(comparison, args.budget, kind="tagged")
    coverage = portfolio_coverage(comparison, portfolio, kind="tagged")
    print(f"pick {portfolio}: {100 * coverage:.0f}% of tagged union")
    # Show the marginal value of each pick.
    for size in range(1, len(portfolio) + 1):
        prefix = portfolio[:size]
        fraction = portfolio_coverage(comparison, prefix, kind="tagged")
        print(f"  first {size}: {prefix} -> {100 * fraction:.0f}%")

    print("\n=== Feeds as blocking oracles ===")
    reports = evaluate_all_filters(comparison)
    table = Table(
        ["Feed", "Precision", "Timely recall", "Collateral"],
    )
    for name in pipeline.feed_order:
        report = reports[name]
        table.add_row(
            name,
            format_percent(report.precision),
            format_percent(report.timely_volume_recall),
            format_percent(report.collateral_fraction),
        )
    print(table.render())
    print(
        "\nReading: only the blacklists combine high precision with "
        "near-zero collateral -- the paper's conclusion that purity is "
        "paramount when a feed drives filtering directly."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
