"""Figure 8: pairwise Kendall rank correlation of tagged-domain frequency."""

from repro.analysis.proportionality import MAIL


def test_fig8_kendall_tau(benchmark, pipeline, show):
    matrix = benchmark(pipeline.figure8)
    for feed, row in matrix.items():
        if feed != MAIL:
            assert row[feed] == 1.0
        for value in row.values():
            assert -1.0 <= value <= 1.0
    show(pipeline.render_figure8())
