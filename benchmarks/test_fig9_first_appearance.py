"""Figure 9: relative first-appearance time (reference: all but Bot)."""

from repro.simtime import MINUTES_PER_DAY


def test_fig9_first_appearance(benchmark, pipeline, show):
    stats = benchmark(pipeline.figure9)
    assert stats["dbl"].median < MINUTES_PER_DAY
    assert stats["Hu"].median < MINUTES_PER_DAY
    assert stats["mx1"].median > stats["Hu"].median
    show(pipeline.render_figure9())
