"""Streaming engine throughput over the paper-scale record volume.

Two benches: the merge layer alone (heap interleave, no analysis) and
the full engine (merge + online accumulators).  Both report records/sec
via ``extra_info`` so throughput regressions are visible in the
benchmark log, and the engine bench re-asserts batch equivalence on its
final snapshot so a fast-but-wrong optimization cannot slip through.
"""

from __future__ import annotations

from repro.stream import RecordStream, StreamEngine


def _sources(pipeline):
    result = pipeline.run()
    return {
        name: ds.chronological_records()
        for name, ds in result.datasets.items()
    }


def test_merge_throughput(benchmark, pipeline, show):
    sources = _sources(pipeline)
    total = sum(len(records) for records in sources.values())

    def drain_merge():
        stream = RecordStream(sources)
        count = 0
        while True:
            batch = stream.next_batch()
            if not batch:
                return count
            count += len(batch)

    count = benchmark(drain_merge)
    assert count == total
    rate = total / benchmark.stats.stats.mean
    benchmark.extra_info["records"] = total
    benchmark.extra_info["records_per_sec"] = round(rate)
    show(f"[stream] merge layer: {total:,} records, {rate:,.0f} records/s")


def test_engine_throughput(benchmark, pipeline, show):
    result = pipeline.run()
    total = sum(ds.total_samples for ds in result.datasets.values())

    def drain_engine():
        engine = StreamEngine(
            result.world, result.datasets,
            seed=pipeline.seed, feed_order=pipeline.feed_order,
        )
        engine.run()
        return engine

    engine = benchmark(drain_engine)
    assert engine.records_processed == total
    snapshot = engine.snapshot()
    assert snapshot.render_table1() == pipeline.render_table1()
    rate = total / benchmark.stats.stats.mean
    benchmark.extra_info["records"] = total
    benchmark.extra_info["records_per_sec"] = round(rate)
    show(
        f"[stream] full engine: {total:,} records, {rate:,.0f} records/s\n\n"
        + snapshot.header()
    )
