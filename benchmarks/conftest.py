"""Benchmark fixtures.

The paper-scale pipeline is built once per session and pre-warmed so
that each benchmark measures its *analysis* stage, not world generation
or feed collection.  Every benchmark prints the regenerated table or
figure through ``capsys.disabled()`` so the paper-shaped artifact lands
in the benchmark log.
"""

from __future__ import annotations

import pytest

from repro.ecosystem import paper_config
from repro.pipeline import PaperPipeline


@pytest.fixture(scope="session")
def pipeline():
    p = PaperPipeline(paper_config(), seed=2012)
    p.run()
    # Warm the shared caches (crawl verdicts, unique-domain sets) so
    # individual benchmarks time their own analysis, not the first
    # toucher's cache fill.
    p.comparison.crawl_results()
    return p


@pytest.fixture()
def show(capsys):
    """Print an artifact to the real stdout despite capture."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show
