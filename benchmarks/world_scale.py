"""Measure the sharded world build across scales and shard counts.

Writes ``BENCH_world.json``: wall-clock seconds, peak RSS, and derived
speedups for the ecosystem build at 1x / 10x / 100x the paper scale,
serial vs. sharded.  Run it directly:

    PYTHONPATH=src python benchmarks/world_scale.py --out BENCH_world.json

Every scenario runs in a **fresh subprocess** because ``ru_maxrss`` is a
process-lifetime high-water mark: measuring two scenarios in one
process would report the larger build's peak for both.  The 100x
*monolithic* build is never run -- its row is extrapolated linearly
from the measured 10x monolithic build (that extrapolation being
optimistic for memory is exactly what the sharded path is for).

The host core count is embedded prominently (``available_cpus``): on a
single-core container the parallel rows measure dispatch overhead, not
speedup -- regenerate on a multi-core host for the headline numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
SRC = os.path.join(os.path.dirname(HERE), "src")

#: (label, scale, shards, mode).  mode "world" assembles the full
#: World object graph; mode "summary" folds packed units into the
#: bounded-memory scale summary without materializing a world.
SCENARIOS = [
    ("1x-monolithic-world", 1.0, 1, "world"),
    ("1x-sharded-summary", 1.0, 4, "summary"),
    ("10x-monolithic-world", 10.0, 1, "world"),
    ("10x-serial-summary", 10.0, 1, "summary"),
    ("10x-sharded-summary", 10.0, 8, "summary"),
    ("100x-sharded-summary", 100.0, 16, "summary"),
]

_CHILD = r"""
import json, resource, sys, time
from repro.ecosystem import (
    build_world, paper_config, scaled_config, summarize_world_sharded,
    world_fingerprint,
)

scale, shards, mode, seed = (
    float(sys.argv[1]), int(sys.argv[2]), sys.argv[3], int(sys.argv[4])
)
config = paper_config()
if scale != 1.0:
    config = scaled_config(config, scale)

start = time.perf_counter()
if mode == "world":
    world = build_world(config, seed=seed)
    payload = {
        "campaigns": len(world.campaigns),
        "fingerprint": world_fingerprint(world),
    }
else:
    summary = summarize_world_sharded(
        config, seed=seed, shards=shards, jobs=shards
    )
    payload = {
        "campaigns": summary.campaigns,
        "placements": summary.placements,
        "merged_events": summary.merged_events,
        "fingerprint": summary.fingerprint,
    }
elapsed = time.perf_counter() - start
payload["wall_seconds"] = round(elapsed, 3)
payload["peak_rss_kib"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps(payload))
"""


def run_scenario(label, scale, shards, mode, seed):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(scale), str(shards), mode,
         str(seed)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    result = json.loads(proc.stdout.splitlines()[-1])
    result.update(label=label, scale=scale, shards=shards, mode=mode)
    return result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_world.json")
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument(
        "--quick", action="store_true",
        help="only the 1x scenarios (CI smoke)",
    )
    args = parser.parse_args(argv)

    scenarios = [
        s for s in SCENARIOS if not args.quick or s[1] == 1.0
    ]
    results = []
    for label, scale, shards, mode in scenarios:
        print(f"[world-scale] {label} ...", file=sys.stderr, flush=True)
        results.append(run_scenario(label, scale, shards, mode, args.seed))
        row = results[-1]
        print(
            f"[world-scale] {label}: {row['wall_seconds']}s, "
            f"peak {row['peak_rss_kib']} KiB",
            file=sys.stderr, flush=True,
        )

    by_label = {r["label"]: r for r in results}
    derived = {}
    mono10 = by_label.get("10x-monolithic-world")
    if mono10 is not None:
        # Never actually built: linear extrapolation of the measured
        # 10x monolithic run, the baseline the sharded path displaces.
        derived["100x-monolithic-extrapolated"] = {
            "wall_seconds": round(mono10["wall_seconds"] * 10, 1),
            "peak_rss_kib": mono10["peak_rss_kib"] * 10,
        }
        sharded100 = by_label.get("100x-sharded-summary")
        if sharded100 is not None:
            derived["rss_ratio_100x_sharded_vs_extrapolated"] = round(
                sharded100["peak_rss_kib"]
                / (mono10["peak_rss_kib"] * 10),
                3,
            )
    serial10 = by_label.get("10x-serial-summary")
    sharded10 = by_label.get("10x-sharded-summary")
    if serial10 and sharded10:
        derived["speedup_10x_sharded_vs_serial"] = round(
            serial10["wall_seconds"] / sharded10["wall_seconds"], 2
        )

    report = {
        # Single most important caveat for reading any number below:
        # on a 1-CPU host the sharded rows measure fork/IPC overhead.
        "available_cpus": os.cpu_count(),
        "seed": args.seed,
        "scenarios": results,
        "derived": derived,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"[world-scale] wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
