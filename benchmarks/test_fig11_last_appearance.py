"""Figure 11: last appearance vs. aggregate campaign end."""

from repro.simtime import MINUTES_PER_DAY


def test_fig11_last_appearance(benchmark, pipeline, show):
    stats = benchmark(pipeline.figure11)
    for box in stats.values():
        assert box.median < 2 * MINUTES_PER_DAY
        assert box.p5 >= 0.0
    show(pipeline.render_figure11())
