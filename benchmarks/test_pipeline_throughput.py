"""End-to-end pipeline wall time: serial vs. parallel, cold vs. warm.

Three benches at paper scale (seed 2012):

* the feed-collection stage, serial and on a forked worker pool;
* the full cold pipeline (world + collection + analysis + render),
  serial and with ``jobs=4`` fan-out; and
* a warm artifact-cache run against the cold run that populated it.

Every bench records its comparison partner and the resulting speedup
in ``extra_info``, along with ``available_cpus`` -- the parallel
numbers are only meaningful relative to the cores the host actually
has (a single-core container cannot show a parallel wall-time win, it
can only show that the overhead is bounded).  Parallel benches
re-assert byte-equivalence with the serial output so a fast-but-wrong
scheduling change cannot slip through.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.ecosystem import paper_config
from repro.feeds import (
    clear_pool_state,
    collect_all,
    set_pool_state,
    standard_feed_suite,
)
from repro.io.artifacts import ArtifactCache
from repro.parallel import WorkerPool
from repro.pipeline import PaperPipeline

SEED = 2012

#: Worker width for the parallel benches; the pool forks once and
#: carries every stage, so this is also the recorded ``jobs`` value.
JOBS = 4


def _available_cpus() -> int:
    return os.cpu_count() or 1  # reprolint: disable=REP007 -- reporting only


def _require_multicore() -> None:
    """Parallel wall-time benches are meaningless on one core."""
    cpus = _available_cpus()
    if cpus <= 1:
        pytest.skip(
            f"parallel bench needs more than one core; host has {cpus} "
            "(a single-core run can only measure overhead, not speedup)"
        )


def _once(fn):
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


# ----------------------------------------------------------------------
# Feed-collection stage
# ----------------------------------------------------------------------


def test_collect_stage_serial(benchmark, pipeline, show):
    world = pipeline.run().world
    total = sum(
        ds.total_samples for ds in pipeline.run().datasets.values()
    )

    def collect():
        return collect_all(world, standard_feed_suite(SEED))

    datasets = benchmark.pedantic(collect, rounds=3)
    assert sum(ds.total_samples for ds in datasets.values()) == total
    rate = total / benchmark.stats.stats.mean
    benchmark.extra_info["records"] = total
    benchmark.extra_info["records_per_sec"] = round(rate)
    benchmark.extra_info["jobs"] = 1
    benchmark.extra_info["available_cpus"] = _available_cpus()
    show(f"[pipeline] collect serial: {total:,} records, {rate:,.0f}/s")


def test_collect_stage_parallel(benchmark, pipeline, show):
    _require_multicore()
    world = pipeline.run().world
    serial_seconds, serial = _once(
        lambda: collect_all(world, standard_feed_suite(SEED))
    )

    # The pool forks once, outside the timed region, exactly as the
    # pipeline uses it: the bench measures steady-state dispatch.
    collectors = standard_feed_suite(SEED)
    set_pool_state(world, collectors)
    try:
        with WorkerPool(JOBS) as pool:

            def collect():
                return collect_all(world, collectors, pool=pool)

            datasets = benchmark.pedantic(collect, rounds=3)
    finally:
        clear_pool_state()
    for name in serial:
        assert datasets[name].records == serial[name].records
    speedup = serial_seconds / benchmark.stats.stats.mean
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["pool"] = True
    benchmark.extra_info["available_cpus"] = _available_cpus()
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["speedup_vs_serial"] = round(speedup, 3)
    show(
        f"[pipeline] collect pool jobs={JOBS}: "
        f"{benchmark.stats.stats.mean:.2f}s "
        f"vs serial {serial_seconds:.2f}s "
        f"({speedup:.2f}x on {_available_cpus()} cpu)"
    )


# ----------------------------------------------------------------------
# Full cold pipeline
# ----------------------------------------------------------------------


def test_full_pipeline_cold_serial(benchmark, show):
    def render():
        return PaperPipeline(paper_config(), seed=SEED).render_all()

    text = benchmark.pedantic(render, rounds=1)
    assert "Table 1" in text
    benchmark.extra_info["jobs"] = 1
    benchmark.extra_info["available_cpus"] = _available_cpus()
    show(
        f"[pipeline] cold serial render_all: "
        f"{benchmark.stats.stats.mean:.2f}s"
    )


def test_full_pipeline_cold_parallel(benchmark, show):
    _require_multicore()
    serial_seconds, serial_text = _once(
        lambda: PaperPipeline(paper_config(), seed=SEED).render_all()
    )

    def render():
        # jobs >= 2 makes the pipeline fork its persistent pool right
        # after world build; collect and render both ride on it.
        with PaperPipeline(
            paper_config(), seed=SEED, jobs=JOBS
        ) as parallel_pipeline:
            return parallel_pipeline.render_all()

    text = benchmark.pedantic(render, rounds=1)
    assert text == serial_text  # worker count never changes bytes
    speedup = serial_seconds / benchmark.stats.stats.mean
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["pool"] = True
    benchmark.extra_info["available_cpus"] = _available_cpus()
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["speedup_vs_serial"] = round(speedup, 3)
    show(
        f"[pipeline] cold pool jobs={JOBS} render_all: "
        f"{benchmark.stats.stats.mean:.2f}s vs serial "
        f"{serial_seconds:.2f}s ({speedup:.2f}x on "
        f"{_available_cpus()} cpu)"
    )


# ----------------------------------------------------------------------
# Artifact cache: cold fill vs. warm hit
# ----------------------------------------------------------------------


def test_warm_cache_vs_cold(benchmark, tmp_path, show):
    cache = ArtifactCache(str(tmp_path / "artifacts"))
    cold_seconds, cold_text = _once(
        lambda: PaperPipeline(
            paper_config(), seed=SEED, cache=cache
        ).render_all()
    )

    # Warm state load alone (world + columnar datasets from disk,
    # render recomputed): invalidate only the rendered-text artifact.
    probe = PaperPipeline(paper_config(), seed=SEED, cache=cache)
    cache.invalidate(probe._cache_key("render-all"))
    state_seconds, state_text = _once(probe.render_all)
    assert state_text == cold_text

    def warm():
        return PaperPipeline(
            paper_config(), seed=SEED, cache=cache
        ).render_all()

    text = benchmark(warm)
    assert text == cold_text
    warm_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 3)
    benchmark.extra_info["warm_state_seconds"] = round(state_seconds, 3)
    benchmark.extra_info["speedup_cold_vs_warm"] = round(
        cold_seconds / warm_seconds, 1
    )
    show(
        f"[pipeline] cache: cold {cold_seconds:.2f}s, warm state "
        f"{state_seconds:.2f}s, warm render {warm_seconds * 1e3:.1f}ms "
        f"({cold_seconds / warm_seconds:,.0f}x)"
    )
