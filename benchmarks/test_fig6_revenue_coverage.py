"""Figure 6: revenue-weighted RX affiliate coverage."""


def test_fig6_revenue_coverage(benchmark, pipeline, show):
    rows = benchmark(pipeline.figure6)
    by_feed = {r.feed: r for r in rows}
    assert by_feed["Hu"].covered_revenue >= by_feed["dbl"].covered_revenue
    assert by_feed["dbl"].covered_revenue > 0.5 * by_feed["Hu"].covered_revenue
    show(pipeline.render_figure6())
