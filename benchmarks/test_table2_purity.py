"""Table 2: purity indicators (DNS, HTTP, Tagged, ODP, Alexa)."""


def test_table2_purity(benchmark, pipeline, show):
    rows = benchmark(pipeline.table2)
    assert len(rows) == len(pipeline.feed_order)
    by_feed = {r.feed: r for r in rows}
    # Headline anomalies must be present in the regenerated table.
    assert by_feed["Bot"].dns < 0.1
    assert by_feed["dbl"].dns == 1.0
    show(pipeline.render_table2())
