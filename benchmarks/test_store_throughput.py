"""Sighting-store landing and query throughput at paper scale.

Three benches over the full paper-scale record volume:

* cold landing into a fresh SQLite store (rows/sec through the bronze
  + silver + gold tiers);
* idempotent re-landing of the same run (the prefix-skip path a
  ``run --store`` after ``stream --store`` takes); and
* cross-run first-seen queries against the landed gold tier.

The landing benches re-assert the gold tier against the in-process
first-seen analysis, so a fast-but-wrong landing path cannot slip
through.
"""

from __future__ import annotations

from repro.feeds import land_dataset
from repro.store import SightingStore

SEED = 2012


def _land_all(store, pipeline):
    result = pipeline.run()
    writer = store.open_run("bench", SEED, "bench-cfg", "bench")
    for name in result.datasets:
        land_dataset(writer, result.datasets[name])
    writer.finish()
    return writer


def test_store_cold_landing(benchmark, pipeline, tmp_path, show):
    result = pipeline.run()
    total = sum(ds.total_samples for ds in result.datasets.values())
    paths = iter(str(tmp_path / f"cold{i}.sqlite") for i in range(100))

    def land():
        with SightingStore.open(next(paths)) as store:
            _land_all(store, pipeline)
            return store.feed_summaries()

    summaries = benchmark.pedantic(land, rounds=1)
    assert sum(s.sightings for s in summaries) == total
    rate = total / benchmark.stats.stats.mean
    benchmark.extra_info["records"] = total
    benchmark.extra_info["records_per_sec"] = round(rate)
    show(f"[store] cold landing: {total:,} rows, {rate:,.0f} rows/s")


def test_store_idempotent_reland(benchmark, pipeline, tmp_path, show):
    result = pipeline.run()
    total = sum(ds.total_samples for ds in result.datasets.values())
    path = str(tmp_path / "reland.sqlite")
    with SightingStore.open(path) as store:
        _land_all(store, pipeline)

    def reland():
        with SightingStore.open(path) as store:
            return _land_all(store, pipeline)

    benchmark.pedantic(reland, rounds=3)
    with SightingStore.open(path) as store:
        assert sum(s.sightings for s in store.feed_summaries()) == total
    rate = total / benchmark.stats.stats.mean
    benchmark.extra_info["records"] = total
    benchmark.extra_info["skipped_per_sec"] = round(rate)
    show(f"[store] idempotent re-land: {total:,} rows, {rate:,.0f} rows/s")


def test_store_first_seen_queries(benchmark, pipeline, tmp_path, show):
    result = pipeline.run()
    path = str(tmp_path / "query.sqlite")
    with SightingStore.open(path) as store:
        _land_all(store, pipeline)
    probe_feed = sorted(result.datasets)[0]
    dataset = result.datasets[probe_feed]
    first = dataset.first_seen()
    domains = sorted(first)[:2000]

    store = SightingStore.open(path)
    try:
        def query_all():
            hits = 0
            for domain in domains:
                if store.first_seen(domain):
                    hits += 1
            return hits

        hits = benchmark(query_all)
        assert hits == len(domains)
        # the landed gold tier answers exactly what the analysis computed
        for domain in domains[:50]:
            rows = {
                row.feed: row.first_seen for row in store.first_seen(domain)
            }
            assert rows[probe_feed] == first[domain]
    finally:
        store.close()
    rate = len(domains) / benchmark.stats.stats.mean
    benchmark.extra_info["queries"] = len(domains)
    benchmark.extra_info["queries_per_sec"] = round(rate)
    show(f"[store] first-seen: {len(domains):,} lookups, {rate:,.0f}/s")
