"""Extension bench: fused onset/end timelines (Section 5's suggestion).

Verifies that combining blacklist/human onsets with honeypot ends beats
any single feed on both axes, and reports the fused error distribution.
"""

from repro.analysis.fusion import evaluate_fusion
from repro.reporting.charts import render_box_stats
from repro.simtime import MINUTES_PER_DAY


def test_fusion_extension(benchmark, pipeline, show):
    comparison = pipeline.comparison

    evaluation = benchmark(evaluate_fusion, comparison)
    assert evaluation.n_domains > 100
    # Fused onsets must be no later (median) than the best single feed
    # among the fused roles.
    assert (
        evaluation.onset_error.median
        <= evaluation.best_single_onset_median + 1e-9
    )
    show(
        render_box_stats(
            {
                "onset err": evaluation.onset_error,
                "end err": evaluation.end_error,
                "duration err": evaluation.duration_error,
            },
            divisor=MINUTES_PER_DAY,
            unit="days",
            title=(
                "Fusion extension: fused campaign-timeline errors over "
                f"{evaluation.n_domains} tagged domains "
                f"(best single onset feed: "
                f"{evaluation.best_single_onset_feed})"
            ),
        )
    )
