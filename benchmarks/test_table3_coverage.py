"""Table 3: total and exclusive live/tagged domain counts."""


def test_table3_coverage(benchmark, pipeline, show):
    rows = benchmark(pipeline.table3)
    by_feed = {r.feed: r for r in rows}
    tagged = {n: r.total_tagged for n, r in by_feed.items()}
    assert max(tagged, key=tagged.get) == "Hu"
    show(pipeline.render_table3())
