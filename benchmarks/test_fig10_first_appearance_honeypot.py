"""Figure 10: first-appearance time, honeypot-relative reference."""


def test_fig10_first_appearance_honeypot(benchmark, pipeline, show):
    stats = benchmark(pipeline.figure10)
    fig9 = pipeline.figure9()
    for feed in ("mx1", "mx3"):
        assert stats[feed].median < fig9[feed].median
    show(pipeline.render_figure10())
