"""Figure 1: distinct vs. exclusive domains per feed (live and tagged)."""


def test_fig1_exclusive_scatter(benchmark, pipeline, show):
    def both_panels():
        return (pipeline.figure1("live"), pipeline.figure1("tagged"))

    live, tagged = benchmark(both_panels)
    assert {p.feed for p in live} == set(pipeline.feed_order)
    by_feed = {p.feed: p for p in live}
    assert by_feed["Hyb"].exclusive_fraction > 0.5
    show(pipeline.render_figure1())
