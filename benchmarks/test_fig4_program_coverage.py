"""Figure 4: pairwise affiliate-program coverage."""


def test_fig4_program_coverage(benchmark, pipeline, show):
    matrix = benchmark(pipeline.figure4)
    assert matrix.union_coverage("Hu") == 1.0
    assert matrix.union_coverage("Bot") < 0.4
    show(pipeline.render_figure4())
