"""Load-test the serve daemon: cold vs. warm latency and throughput.

Writes ``BENCH_serve.json``: requests/sec plus p50/p99 latency for the
daemon's main endpoints, split into the *cold* phase (first request
per world key pays the build, concurrent duplicates coalesce) and the
*warm* phase (resident world, memoized renders).  Run it directly:

    PYTHONPATH=src python benchmarks/serve_load.py --out BENCH_serve.json

The daemon is spawned as a real subprocess of ``python -m repro serve``
-- the same process boundary production queries cross -- and the
harness talks plain ``http.client`` with persistent connections.  The
cold-storm section doubles as a coalescing demonstration: the report
records the daemon's own counters, so ``worlds_built == 1`` with
``concurrency`` clients is visible in the artifact, not just asserted
in tests.

On a single-core container throughput numbers measure the daemon's
dispatch overhead, not parallel rendering; ``available_cpus`` is
embedded so readers can tell.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import re
import signal
import statistics
import subprocess
import sys
import threading
import time

HERE = os.path.dirname(os.path.abspath(__file__))
SRC = os.path.join(os.path.dirname(HERE), "src")


def percentile(samples, fraction):
    ordered = sorted(samples)
    if not ordered:
        return None
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


class Client:
    """One persistent connection issuing timed GETs."""

    def __init__(self, host, port):
        self.conn = http.client.HTTPConnection(host, port, timeout=600)

    def get(self, path):
        start = time.perf_counter()
        self.conn.request("GET", path)
        response = self.conn.getresponse()
        body = response.read()
        elapsed = time.perf_counter() - start
        if response.status != 200:
            raise RuntimeError(f"{path} -> {response.status}: {body[:200]!r}")
        return elapsed, len(body)

    def close(self):
        self.conn.close()


def storm(host, port, path, clients, requests_each):
    """`clients` concurrent connections each issuing `requests_each`
    GETs of *path*; returns every latency sample plus the wall time."""
    latencies = []
    errors = []
    lock = threading.Lock()

    def worker():
        client = Client(host, port)
        try:
            for _ in range(requests_each):
                sample = client.get(path)[0]
                with lock:
                    latencies.append(sample)
        except Exception as exc:  # noqa: BLE001 - recorded in the report
            with lock:
                errors.append(repr(exc))
        finally:
            client.close()

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    return latencies, wall, errors


def summarize(label, path, latencies, wall, errors):
    return {
        "label": label,
        "path": path,
        "requests": len(latencies),
        "errors": errors,
        "wall_seconds": round(wall, 3),
        "requests_per_second": (
            round(len(latencies) / wall, 2) if wall > 0 else None
        ),
        "p50_seconds": round(percentile(latencies, 0.50), 4)
        if latencies else None,
        "p99_seconds": round(percentile(latencies, 0.99), 4)
        if latencies else None,
        "max_seconds": round(max(latencies), 4) if latencies else None,
        "mean_seconds": round(statistics.fmean(latencies), 4)
        if latencies else None,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument(
        "--small", action="store_true",
        help="serve the miniature world (CI smoke)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=8,
        help="concurrent client connections (default 8)",
    )
    parser.add_argument(
        "--warm-requests", type=int, default=25,
        help="warm requests per client per endpoint (default 25)",
    )
    args = parser.parse_args(argv)

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    command = [sys.executable, "-m", "repro", "--seed", str(args.seed)]
    if args.small:
        command.append("--small")
    command += ["serve", "--no-cache"]
    print(f"[serve-load] starting: {' '.join(command)}", file=sys.stderr)
    daemon = subprocess.Popen(
        command, stderr=subprocess.PIPE, stdout=subprocess.PIPE,
        text=True, env=env,
    )
    try:
        ready = daemon.stderr.readline()
        match = re.search(r"listening on http://([\d.]+):(\d+)", ready)
        if not match:
            raise RuntimeError(f"no readiness line: {ready!r}")
        host, port = match.group(1), int(match.group(2))

        phases = []

        # Cold storm: every client asks for the full table set of a
        # world nobody has built yet.  One build, N-1 coalesced waits:
        # p50 ~ p99 ~ build time, and the daemon counters prove the
        # coalescing.
        latencies, wall, errors = storm(
            host, port, "/v1/tables", args.concurrency, 1
        )
        phases.append(
            summarize("cold-storm", "/v1/tables", latencies, wall, errors)
        )

        # Warm phases: resident world, memoized renders; latency is
        # dispatch + memcpy of the response body.
        for label, path in [
            ("warm-tables", "/v1/tables"),
            ("warm-feeds-json", "/v1/feeds"),
            ("warm-snapshot", "/v1/snapshot?day=30"),
            ("warm-recommend", "/v1/recommend?question=coverage"),
        ]:
            latencies, wall, errors = storm(
                host, port, path, args.concurrency, args.warm_requests
            )
            phases.append(summarize(label, path, latencies, wall, errors))

        stats_client = Client(host, port)
        stats_client.conn.request("GET", "/v1/stats")
        counters = json.loads(stats_client.conn.getresponse().read())[
            "metrics"
        ]["counters"]
        stats_client.close()
    finally:
        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            daemon.kill()
            daemon.communicate()

    cold = phases[0]
    warm = next(p for p in phases if p["label"] == "warm-tables")
    derived = {}
    if cold["p50_seconds"] and warm["p50_seconds"]:
        derived["cold_over_warm_p50"] = round(
            cold["p50_seconds"] / warm["p50_seconds"], 1
        )
    report = {
        "available_cpus": os.cpu_count(),
        "seed": args.seed,
        "small": args.small,
        "concurrency": args.concurrency,
        "daemon_exit_code": daemon.returncode,
        "phases": phases,
        "daemon_counters": counters,
        "derived": derived,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    built = counters.get("serve.worlds_built")
    print(
        f"[serve-load] worlds built: {built} "
        f"(storm of {args.concurrency}); wrote {args.out}",
        file=sys.stderr,
    )
    return 0 if daemon.returncode == 0 and built == 1 else 1


if __name__ == "__main__":
    sys.exit(main())
