"""reprolint v2 throughput over the real ``src/repro`` tree.

Three benches around the summary cache and the parallel summarizer:

* cold serial lint (every file summarized from source, fresh cache);
* warm lint (every summary served from the content-hash cache); and
* cold parallel lint (``jobs=4`` through ``ordered_fanout``).

Every bench asserts its findings are empty (the tree is lint-clean)
and identical across paths, so a fast-but-divergent engine cannot
slip through as a throughput win.
"""

from __future__ import annotations

import itertools
import pathlib

from repro.devtools.lint import iter_python_files, lint_paths
from repro.io.artifacts import ArtifactCache

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src" / "repro")


def _render(findings):
    return [f.to_dict() for f in findings]


def test_lint_cold_serial(benchmark, tmp_path, show):
    n_files = len(list(iter_python_files([SRC])))
    dirs = iter(str(tmp_path / f"cold{i}") for i in itertools.count())

    def cold():
        return lint_paths([SRC], cache=ArtifactCache(next(dirs)))

    findings = benchmark.pedantic(cold, rounds=3)
    assert findings == []
    rate = n_files / benchmark.stats.stats.mean
    benchmark.extra_info["files"] = n_files
    benchmark.extra_info["files_per_sec"] = round(rate, 1)
    show(f"[lint] cold serial: {n_files} files, {rate:,.1f} files/s")


def test_lint_warm_cache(benchmark, tmp_path, show):
    n_files = len(list(iter_python_files([SRC])))
    cache = ArtifactCache(str(tmp_path / "warm"))
    cold = lint_paths([SRC], cache=cache)

    def warm():
        return lint_paths([SRC], cache=cache)

    findings = benchmark.pedantic(warm, rounds=3)
    assert _render(findings) == _render(cold)
    rate = n_files / benchmark.stats.stats.mean
    benchmark.extra_info["files"] = n_files
    benchmark.extra_info["files_per_sec"] = round(rate, 1)
    show(f"[lint] warm cache: {n_files} files, {rate:,.1f} files/s")


def test_lint_cold_parallel(benchmark, tmp_path, show):
    n_files = len(list(iter_python_files([SRC])))
    serial = lint_paths([SRC], cache=ArtifactCache(str(tmp_path / "ser")))
    dirs = iter(str(tmp_path / f"par{i}") for i in itertools.count())

    def parallel():
        return lint_paths([SRC], jobs=4, cache=ArtifactCache(next(dirs)))

    findings = benchmark.pedantic(parallel, rounds=3)
    assert _render(findings) == _render(serial)
    rate = n_files / benchmark.stats.stats.mean
    benchmark.extra_info["files"] = n_files
    benchmark.extra_info["jobs"] = 4
    benchmark.extra_info["files_per_sec"] = round(rate, 1)
    show(f"[lint] cold parallel (4 jobs): {n_files} files, {rate:,.1f} files/s")
