"""Figure 7: pairwise variation distance of tagged-domain frequency."""

from repro.analysis.proportionality import MAIL


def test_fig7_variation_distance(benchmark, pipeline, show):
    matrix = benchmark(pipeline.figure7)
    distances = {f: row[MAIL] for f, row in matrix.items() if f != MAIL}
    assert min(distances, key=distances.get) == "mx2"
    show(pipeline.render_figure7())
