"""Figure 2: pairwise feed intersection matrices (live and tagged)."""


def test_fig2_pairwise_overlap(benchmark, pipeline, show):
    def both_matrices():
        return (pipeline.figure2("live"), pipeline.figure2("tagged"))

    live, tagged = benchmark(both_matrices)
    assert tagged.union_coverage("Hu") > 0.6
    assert live.combined_coverage(["Hu", "Hyb"]) > 0.85
    show(pipeline.render_figure2())
