"""Figure 12: per-feed domain lifetime vs. aggregate campaign duration."""


def test_fig12_duration(benchmark, pipeline, show):
    stats = benchmark(pipeline.figure12)
    for box in stats.values():
        assert box.p95 >= box.median >= 0.0
    show(pipeline.render_figure12())
