"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation toggles one mechanism in a miniature world and verifies
that the paper-shaped effect disappears (or inverts), demonstrating the
mechanism is load-bearing rather than incidental:

* Hu volume suppression -> drives "low volume / high coverage".
* The DGA poisoning episode -> drives Bot/mx2's DNS purity collapse.
* Blacklist listing latency -> drives the Figure 9 ordering.
* The quiet/loud targeting mix -> drives Hu's exclusive coverage.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis import FeedComparison, purity_table
from repro.analysis.coverage import coverage_table
from repro.analysis.timing import first_appearance_latencies
from repro.ecosystem import build_world, small_config
from repro.ecosystem.config import DgaConfig
from repro.ecosystem.entities import AddressStrategy, CampaignClass
from repro.feeds import (
    BlacklistConfig,
    BlacklistFeed,
    HumanFeedConfig,
    HumanIdentifiedFeed,
    MxHoneypotConfig,
    MxHoneypotFeed,
    collect_all,
    standard_feed_suite,
)

SEED = 7


@pytest.fixture(scope="module")
def world():
    return build_world(small_config(), seed=SEED)


class TestHumanSuppressionAblation:
    def test_disabling_suppression_explodes_volume_not_coverage(
        self, benchmark, world
    ):
        def run_ablation():
            suppressed = HumanIdentifiedFeed(
                HumanFeedConfig(), SEED
            ).collect(world)
            unsuppressed = HumanIdentifiedFeed(
                HumanFeedConfig(suppression_cap_mean=10_000.0), SEED
            ).collect(world)
            return suppressed, unsuppressed

        suppressed, unsuppressed = benchmark(run_ablation)
        # Volume explodes without the filter feedback loop...
        assert unsuppressed.total_samples > 3 * suppressed.total_samples
        # ...but domain coverage barely moves: suppression shapes
        # volume, not reach.  This is the paper's headline mechanism.
        assert unsuppressed.n_unique < 1.3 * suppressed.n_unique


class TestDgaAblation:
    def test_removing_poisoning_restores_purity(self, benchmark):
        clean_config = dataclasses.replace(
            small_config(), dga=DgaConfig(n_domains=0, volume=1.0)
        )

        def run_ablation():
            clean_world = build_world(clean_config, seed=SEED)
            datasets = collect_all(clean_world, standard_feed_suite(SEED))
            comparison = FeedComparison(clean_world, datasets, seed=SEED)
            return {r.feed: r for r in purity_table(comparison)}

        rows = benchmark(run_ablation)
        # Without Rustock's episode both poisoned feeds are clean.
        assert rows["Bot"].dns > 0.9
        assert rows["mx2"].dns > 0.9


class TestBlacklistLatencyAblation:
    def test_latency_drives_first_appearance(self, benchmark, world):
        def run_ablation():
            results = {}
            for label, latency in (("fast", 60.0), ("slow", 5_760.0)):
                feed = BlacklistFeed(
                    BlacklistConfig(
                        name="dbl",
                        broad_volume_scale=6_000.0,
                        user_volume_scale=70.0,
                        user_weight=1.0,
                        latency_mean_minutes=latency,
                        benign_fp_domains=0,
                    ),
                    SEED,
                )
                datasets = {"dbl": feed.collect(world)}
                datasets["mx1"] = MxHoneypotFeed(
                    MxHoneypotConfig(
                        name="mx1", inclusion_probability=0.8,
                        harvested_inclusion=0.4, catch_rate=0.02,
                    ),
                    SEED,
                ).collect(world)
                comparison = FeedComparison(world, datasets, seed=SEED)
                stats = first_appearance_latencies(
                    comparison, ["dbl", "mx1"],
                    reference_feeds=["dbl", "mx1"],
                )
                results[label] = stats["dbl"].median
            return results

        medians = benchmark(run_ablation)
        assert medians["slow"] > medians["fast"]


class TestTargetingMixAblation:
    def test_all_loud_world_erases_hu_advantage(self, benchmark):
        # Rebuild the world with every quiet campaign forced loud
        # (brute-force addressing): honeypots now see everything, so
        # Hu's exclusive contribution collapses.
        config = small_config()
        classes = dict(config.campaign_classes)
        quiet = classes[CampaignClass.QUIET_TARGETED]
        classes[CampaignClass.QUIET_TARGETED] = dataclasses.replace(
            quiet,
            strategies=((AddressStrategy.BRUTE_FORCE, 1.0),),
            filter_evasion_low=0.05,
            filter_evasion_high=0.15,
        )
        other = classes[CampaignClass.OTHER_GOODS]
        classes[CampaignClass.OTHER_GOODS] = dataclasses.replace(
            other, strategies=((AddressStrategy.BRUTE_FORCE, 1.0),)
        )
        loud_config = dataclasses.replace(config, campaign_classes=classes)

        def run_ablation():
            exclusives = {}
            for label, cfg in (("mixed", config), ("loud", loud_config)):
                w = build_world(cfg, seed=SEED)
                datasets = collect_all(w, standard_feed_suite(SEED))
                comparison = FeedComparison(w, datasets, seed=SEED)
                rows = {r.feed: r for r in coverage_table(comparison)}
                hu = rows["Hu"]
                exclusives[label] = hu.exclusive_all / max(1, hu.total_all)
            return exclusives

        fractions = benchmark(run_ablation)
        assert fractions["loud"] < fractions["mixed"]
