"""Table 1: feed summary (total samples, unique registered domains)."""


def test_table1_feed_summary(benchmark, pipeline, show):
    rows = benchmark(pipeline.table1)
    assert set(rows) == set(pipeline.feed_order)
    show(pipeline.render_table1())
