"""Figure 3: spam volume coverage via the incoming mail oracle."""


def test_fig3_volume_coverage(benchmark, pipeline, show):
    def both_panels():
        return (pipeline.figure3("live"), pipeline.figure3("tagged"))

    live, tagged = benchmark(both_panels)
    by_feed = {r.feed: r for r in tagged}
    leaders = sorted(
        by_feed, key=lambda n: by_feed[n].covered_fraction, reverse=True
    )[:3]
    assert set(leaders) == {"Hu", "uribl", "dbl"}
    show(pipeline.render_figure3())
