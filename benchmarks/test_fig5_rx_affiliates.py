"""Figure 5: pairwise RX-Promotion affiliate-identifier coverage."""


def test_fig5_rx_affiliates(benchmark, pipeline, show):
    matrix = benchmark(pipeline.figure5)
    coverage = {f: matrix.union_coverage(f) for f in matrix.feeds}
    assert max(coverage, key=coverage.get) == "Hu"
    assert matrix.intersection("Bot", "All") <= 6
    show(pipeline.render_figure5())
